//! The `ReleaseContract` state machine: bonded commit/reveal escrow with
//! timed reveal and slashing.
//!
//! One *deposit* binds `n` holders to a reveal schedule. The lifecycle of
//! each holder position is
//!
//! ```text
//! register (bond escrowed) ──► commit (hash registered)
//!      ──► reveal in [reveal_from, reveal_by)  ──► claim (bond + reward)
//!      ──► reveal before reveal_from           ──► slashed at finalize
//!      ──► no valid reveal by reveal_by        ──► slashed at finalize
//! ```
//!
//! All deadlines are block heights from the [`BlockClock`](crate::clock::BlockClock);
//! the reveal window is half-open (`[reveal_from, reveal_by)`), matching
//! the tick-interval convention of the population model. The contract
//! cannot distinguish a crashed holder from a withholding one — both miss
//! the window and both are slashed — which is exactly the incentive
//! design of Li & Palanisamy 2019: bonds price non-delivery, whatever its
//! cause.
//!
//! Token movements go through a [`Ledger`], so the economics invariants
//! (escrow conservation, no double-claim, slash only on misbehaviour) are
//! enforceable properties of this module, not conventions.

use crate::clock::BlockHeight;
use crate::error::ContractError;
use crate::ledger::{AccountId, Ledger};
use emerge_crypto::sha256::{Sha256, DIGEST_LEN};
use emerge_obs::trace::{event, EventId};
use std::collections::BTreeMap;

/// Identifier of a deposit on the contract.
pub type DepositId = usize;

// Audit-trail events, one per *successful* state transition (failed
// operations change no state and emit nothing). Each bumps a counter of
// the same name in the thread's `emerge-obs` collector and, when the
// collector carries a trace ring, appends a timestamped entry with the
// fields below — the event-level audit trail that lets the bonded
// economy's incentive claims be validated transition by transition.
static EV_OPEN: EventId = EventId::new("contract.open");
static EV_COMMIT: EventId = EventId::new("contract.commit");
static EV_REVEAL: EventId = EventId::new("contract.reveal");
static EV_REVEAL_EARLY: EventId = EventId::new("contract.reveal_early");
static EV_FINALIZE: EventId = EventId::new("contract.finalize");
static EV_SLASH: EventId = EventId::new("contract.slash");
static EV_CLAIM: EventId = EventId::new("contract.claim");

/// Domain separator for reveal commitments.
const COMMIT_DOMAIN: &[u8] = b"emerge-contract-reveal-commitment-v1";

/// The binding hash a holder commits to before the reveal window.
pub fn commitment(payload: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(COMMIT_DOMAIN);
    h.update(&(payload.len() as u64).to_le_bytes());
    h.update(payload);
    h.finalize()
}

/// Financial terms and schedule of one deposit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepositTerms {
    /// The account funding the reveal rewards.
    pub depositor: AccountId,
    /// Bond each holder escrows at registration.
    pub bond: u64,
    /// Reward paid per correct in-window reveal (escrowed from the
    /// depositor at open time).
    pub reveal_reward: u64,
    /// First block of the reveal window.
    pub reveal_from: BlockHeight,
    /// First block *after* the reveal window (half-open `[from, by)`).
    pub reveal_by: BlockHeight,
}

/// Lifecycle state of one holder position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HolderPhase {
    /// Bond escrowed; no commitment yet.
    Registered,
    /// Commitment registered; awaiting the reveal window.
    Committed,
    /// Payload published *before* the window opened (slashing offence;
    /// the payload is public regardless).
    RevealedEarly(BlockHeight),
    /// Payload published inside the window; payout claimable after
    /// finalization.
    Revealed(BlockHeight),
    /// Slashed at finalization (early reveal or no valid in-window
    /// reveal).
    Slashed,
    /// Payout taken.
    Claimed,
}

/// One holder position inside a deposit.
#[derive(Debug, Clone)]
struct HolderEntry {
    account: AccountId,
    committed: Option<[u8; DIGEST_LEN]>,
    /// The published payload and the block it landed in, early or not.
    revealed: Option<(BlockHeight, Vec<u8>)>,
    phase: HolderPhase,
}

/// One deposit: terms, holder set and finalization state.
#[derive(Debug, Clone)]
struct Deposit {
    terms: DepositTerms,
    holders: Vec<HolderEntry>,
    finalized: bool,
}

/// Outcome of finalizing a deposit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FinalizeSummary {
    /// Holder indices slashed (early reveal or missing reveal).
    pub slashed: Vec<usize>,
    /// Total bond value confiscated into the treasury.
    pub slashed_amount: u64,
    /// Reward funds returned to the depositor for misbehaving holders.
    pub refunded_rewards: u64,
}

/// The release contract: every deposit ever opened, with its escrow
/// bookkeeping delegated to the caller's [`Ledger`].
#[derive(Debug, Clone, Default)]
pub struct ReleaseContract {
    deposits: Vec<Deposit>,
}

impl ReleaseContract {
    /// A contract with no deposits.
    pub fn new() -> Self {
        ReleaseContract::default()
    }

    /// Number of deposits ever opened.
    pub fn deposit_count(&self) -> usize {
        self.deposits.len()
    }

    /// Opens a deposit: escrows the depositor's reward pot and every
    /// holder's bond (the *register* step for the whole holder set).
    ///
    /// # Errors
    ///
    /// Rejects empty holder sets, windows that are empty or already open
    /// at `now`, and any account that cannot fund its part. A failed open
    /// leaves the ledger untouched.
    pub fn open(
        &mut self,
        ledger: &mut Ledger,
        terms: DepositTerms,
        holder_accounts: &[AccountId],
        now: BlockHeight,
    ) -> Result<DepositId, ContractError> {
        if holder_accounts.is_empty() {
            return Err(ContractError::InvalidParameters(
                "a deposit needs at least one holder".into(),
            ));
        }
        if terms.reveal_from <= now {
            return Err(ContractError::BadDeadline {
                height: terms.reveal_from,
                requirement: "reveal window must open after the current block",
            });
        }
        if terms.reveal_by <= terms.reveal_from {
            return Err(ContractError::BadDeadline {
                height: terms.reveal_by,
                requirement: "reveal window [from, by) must be non-empty",
            });
        }
        // Validate all funding before locking anything, so failure cannot
        // leave a half-escrowed deposit behind. Requirements are summed
        // *per account* first: with duplicate holder accounts (or a
        // depositor that is also a holder), per-pair validation would
        // pass while the individual locks fail partway and strand escrow.
        let reward_pot = terms
            .reveal_reward
            .checked_mul(holder_accounts.len() as u64)
            .ok_or_else(|| ContractError::InvalidParameters("reward pot overflows".into()))?;
        let mut totals: BTreeMap<AccountId, u64> = BTreeMap::new();
        for (account, amount) in std::iter::once((terms.depositor, reward_pot))
            .chain(holder_accounts.iter().map(|&a| (a, terms.bond)))
        {
            let total = totals.entry(account).or_insert(0);
            *total = total.checked_add(amount).ok_or_else(|| {
                ContractError::InvalidParameters("escrow requirement overflows".into())
            })?;
        }
        for (&account, &required) in &totals {
            let available = ledger
                .balance_checked(account)
                .ok_or(ContractError::UnknownAccount { account })?;
            if available < required {
                return Err(ContractError::InsufficientFunds {
                    account,
                    required,
                    available,
                });
            }
        }
        for (account, total) in totals {
            ledger.lock(account, total)?;
        }

        let holders = holder_accounts
            .iter()
            .map(|&account| HolderEntry {
                account,
                committed: None,
                revealed: None,
                phase: HolderPhase::Registered,
            })
            .collect();
        self.deposits.push(Deposit {
            terms,
            holders,
            finalized: false,
        });
        let id = self.deposits.len() - 1;
        event(
            &EV_OPEN,
            &[
                ("deposit", id as u64),
                ("holders", holder_accounts.len() as u64),
                ("bond", terms.bond),
            ],
        );
        Ok(id)
    }

    /// Registers holder `holder`'s commitment. Allowed once, before the
    /// reveal window opens.
    ///
    /// # Errors
    ///
    /// [`ContractError::WrongPhase`] when re-committing or committing
    /// after `reveal_from`.
    pub fn commit(
        &mut self,
        deposit: DepositId,
        holder: usize,
        digest: [u8; DIGEST_LEN],
        now: BlockHeight,
    ) -> Result<(), ContractError> {
        let dep = self.deposit_mut(deposit)?;
        if now >= dep.terms.reveal_from {
            return Err(ContractError::WrongPhase {
                operation: "commit",
                state: format!("commit window closed at block {}", dep.terms.reveal_from),
            });
        }
        let entry = holder_mut(dep, holder)?;
        if entry.phase != HolderPhase::Registered {
            return Err(ContractError::WrongPhase {
                operation: "commit",
                state: format!("holder is {:?}", entry.phase),
            });
        }
        entry.committed = Some(digest);
        entry.phase = HolderPhase::Committed;
        event(
            &EV_COMMIT,
            &[
                ("deposit", deposit as u64),
                ("holder", holder as u64),
                ("block", now),
            ],
        );
        Ok(())
    }

    /// Publishes holder `holder`'s payload.
    ///
    /// A reveal inside `[reveal_from, reveal_by)` earns the payout at
    /// finalization; a reveal *before* `reveal_from` is accepted (the
    /// data is public either way) but recorded as an early reveal, which
    /// finalization slashes. Returns the phase the holder entered.
    ///
    /// # Errors
    ///
    /// [`ContractError::CommitmentMismatch`] when the payload does not
    /// hash to the commitment, [`ContractError::WrongPhase`] when the
    /// holder never committed, already revealed, or the window has
    /// closed.
    pub fn reveal(
        &mut self,
        deposit: DepositId,
        holder: usize,
        payload: &[u8],
        now: BlockHeight,
    ) -> Result<HolderPhase, ContractError> {
        let dep = self.deposit_mut(deposit)?;
        if dep.finalized || now >= dep.terms.reveal_by {
            return Err(ContractError::WrongPhase {
                operation: "reveal",
                state: format!("reveal window closed at block {}", dep.terms.reveal_by),
            });
        }
        let early = now < dep.terms.reveal_from;
        let entry = holder_mut(dep, holder)?;
        let Some(expected) = entry.committed else {
            return Err(ContractError::WrongPhase {
                operation: "reveal",
                state: format!("holder is {:?}", entry.phase),
            });
        };
        if entry.phase != HolderPhase::Committed {
            return Err(ContractError::WrongPhase {
                operation: "reveal",
                state: format!("holder is {:?}", entry.phase),
            });
        }
        if commitment(payload) != expected {
            return Err(ContractError::CommitmentMismatch { holder });
        }
        entry.revealed = Some((now, payload.to_vec()));
        entry.phase = if early {
            HolderPhase::RevealedEarly(now)
        } else {
            HolderPhase::Revealed(now)
        };
        event(
            if early { &EV_REVEAL_EARLY } else { &EV_REVEAL },
            &[
                ("deposit", deposit as u64),
                ("holder", holder as u64),
                ("block", now),
            ],
        );
        Ok(entry.phase.clone())
    }

    /// Settles the deposit once the reveal window has closed: slashes the
    /// bonds of every holder without a valid in-window reveal (including
    /// early revealers) into the treasury, and refunds the depositor the
    /// reward share of each slashed holder.
    ///
    /// # Errors
    ///
    /// [`ContractError::WrongPhase`] before `reveal_by` or on a second
    /// finalization.
    pub fn finalize(
        &mut self,
        ledger: &mut Ledger,
        deposit: DepositId,
        now: BlockHeight,
    ) -> Result<FinalizeSummary, ContractError> {
        let dep = self
            .deposits
            .get_mut(deposit)
            .ok_or(ContractError::UnknownDeposit { deposit })?;
        if now < dep.terms.reveal_by {
            return Err(ContractError::WrongPhase {
                operation: "finalize",
                state: format!(
                    "reveal window still open until block {}",
                    dep.terms.reveal_by
                ),
            });
        }
        if dep.finalized {
            return Err(ContractError::WrongPhase {
                operation: "finalize",
                state: "deposit already finalized".into(),
            });
        }
        let mut summary = FinalizeSummary::default();
        for (idx, entry) in dep.holders.iter_mut().enumerate() {
            match entry.phase {
                HolderPhase::Revealed(_) => {}
                HolderPhase::Registered
                | HolderPhase::Committed
                | HolderPhase::RevealedEarly(_) => {
                    ledger.confiscate(dep.terms.bond)?;
                    ledger.release(dep.terms.depositor, dep.terms.reveal_reward)?;
                    summary.slashed.push(idx);
                    summary.slashed_amount += dep.terms.bond;
                    summary.refunded_rewards += dep.terms.reveal_reward;
                    entry.phase = HolderPhase::Slashed;
                    event(
                        &EV_SLASH,
                        &[
                            ("deposit", deposit as u64),
                            ("holder", idx as u64),
                            ("bond", dep.terms.bond),
                        ],
                    );
                }
                HolderPhase::Slashed | HolderPhase::Claimed => {
                    // LINT-WAIVER(panic): finalization runs exactly once, so terminal phases cannot re-enter this match
                    unreachable!("terminal phases only exist after finalization, which runs once")
                }
            }
        }
        dep.finalized = true;
        event(
            &EV_FINALIZE,
            &[
                ("deposit", deposit as u64),
                ("slashed", summary.slashed.len() as u64),
                ("block", now),
            ],
        );
        Ok(summary)
    }

    /// Pays holder `holder` its bond plus the reveal reward. Allowed once,
    /// after finalization, only for in-window revealers.
    ///
    /// # Errors
    ///
    /// [`ContractError::AlreadyClaimed`] on a second claim,
    /// [`ContractError::WrongPhase`] before finalization or for a holder
    /// that was slashed.
    pub fn claim(
        &mut self,
        ledger: &mut Ledger,
        deposit: DepositId,
        holder: usize,
    ) -> Result<u64, ContractError> {
        let dep = self
            .deposits
            .get_mut(deposit)
            .ok_or(ContractError::UnknownDeposit { deposit })?;
        if !dep.finalized {
            return Err(ContractError::WrongPhase {
                operation: "claim",
                state: "deposit not finalized".into(),
            });
        }
        let (bond, reward, depositor) =
            (dep.terms.bond, dep.terms.reveal_reward, dep.terms.depositor);
        let _ = depositor;
        let entry = holder_mut(dep, holder)?;
        match entry.phase {
            HolderPhase::Revealed(_) => {
                ledger.release(entry.account, bond + reward)?;
                entry.phase = HolderPhase::Claimed;
                event(
                    &EV_CLAIM,
                    &[
                        ("deposit", deposit as u64),
                        ("holder", holder as u64),
                        ("payout", bond + reward),
                    ],
                );
                Ok(bond + reward)
            }
            HolderPhase::Claimed => Err(ContractError::AlreadyClaimed { holder }),
            _ => Err(ContractError::WrongPhase {
                operation: "claim",
                state: format!("holder is {:?}", entry.phase),
            }),
        }
    }

    /// The current phase of a holder position.
    ///
    /// # Errors
    ///
    /// Unknown deposit or holder index.
    pub fn holder_phase(
        &self,
        deposit: DepositId,
        holder: usize,
    ) -> Result<HolderPhase, ContractError> {
        let dep = self
            .deposits
            .get(deposit)
            .ok_or(ContractError::UnknownDeposit { deposit })?;
        dep.holders
            .get(holder)
            .map(|e| e.phase.clone())
            .ok_or(ContractError::UnknownHolder { holder })
    }

    /// The published payload of a holder (early or in-window), with the
    /// block it landed in — the contract's public on-chain data.
    ///
    /// # Errors
    ///
    /// Unknown deposit or holder index.
    pub fn published(
        &self,
        deposit: DepositId,
        holder: usize,
    ) -> Result<Option<(BlockHeight, Vec<u8>)>, ContractError> {
        let dep = self
            .deposits
            .get(deposit)
            .ok_or(ContractError::UnknownDeposit { deposit })?;
        dep.holders
            .get(holder)
            .map(|e| e.revealed.clone())
            .ok_or(ContractError::UnknownHolder { holder })
    }

    /// Whether a deposit has been finalized.
    ///
    /// # Errors
    ///
    /// Unknown deposit id.
    pub fn is_finalized(&self, deposit: DepositId) -> Result<bool, ContractError> {
        self.deposits
            .get(deposit)
            .map(|d| d.finalized)
            .ok_or(ContractError::UnknownDeposit { deposit })
    }

    /// The terms of a deposit.
    ///
    /// # Errors
    ///
    /// Unknown deposit id.
    pub fn terms(&self, deposit: DepositId) -> Result<DepositTerms, ContractError> {
        self.deposits
            .get(deposit)
            .map(|d| d.terms)
            .ok_or(ContractError::UnknownDeposit { deposit })
    }

    fn deposit_mut(&mut self, deposit: DepositId) -> Result<&mut Deposit, ContractError> {
        self.deposits
            .get_mut(deposit)
            .ok_or(ContractError::UnknownDeposit { deposit })
    }
}

fn holder_mut(dep: &mut Deposit, holder: usize) -> Result<&mut HolderEntry, ContractError> {
    dep.holders
        .get_mut(holder)
        .ok_or(ContractError::UnknownHolder { holder })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOND: u64 = 100;
    const REWARD: u64 = 10;

    /// Ledger with 3 holder accounts (0..3) and a depositor (3).
    fn setup() -> (Ledger, ReleaseContract, DepositId) {
        let mut ledger = Ledger::new(4, 1_000);
        let mut contract = ReleaseContract::new();
        let terms = DepositTerms {
            depositor: 3,
            bond: BOND,
            reveal_reward: REWARD,
            reveal_from: 10,
            reveal_by: 12,
        };
        let id = contract.open(&mut ledger, terms, &[0, 1, 2], 0).unwrap();
        (ledger, contract, id)
    }

    #[test]
    fn open_escrows_bonds_and_reward_pot() {
        let (ledger, contract, id) = setup();
        assert_eq!(ledger.balance(0), 1_000 - BOND);
        assert_eq!(ledger.balance(3), 1_000 - 3 * REWARD);
        assert_eq!(ledger.escrow(), 3 * BOND + 3 * REWARD);
        assert_eq!(ledger.total_supply(), 4_000);
        assert_eq!(
            contract.holder_phase(id, 0).unwrap(),
            HolderPhase::Registered
        );
    }

    #[test]
    fn happy_path_reveal_and_claim() {
        let (mut ledger, mut contract, id) = setup();
        for holder in 0..3 {
            contract
                .commit(id, holder, commitment(b"share"), 1)
                .unwrap();
            assert_eq!(
                contract.holder_phase(id, holder).unwrap(),
                HolderPhase::Committed
            );
        }
        for holder in 0..3 {
            let phase = contract.reveal(id, holder, b"share", 10).unwrap();
            assert_eq!(phase, HolderPhase::Revealed(10));
        }
        let summary = contract.finalize(&mut ledger, id, 12).unwrap();
        assert!(summary.slashed.is_empty());
        for holder in 0..3 {
            assert_eq!(
                contract.claim(&mut ledger, id, holder).unwrap(),
                BOND + REWARD
            );
            assert_eq!(ledger.balance(holder), 1_000 + REWARD);
        }
        assert_eq!(ledger.escrow(), 0);
        assert_eq!(ledger.treasury(), 0);
        assert_eq!(ledger.total_supply(), 4_000);
    }

    #[test]
    fn withholding_is_slashed_and_rewards_refund() {
        let (mut ledger, mut contract, id) = setup();
        for holder in 0..3 {
            contract
                .commit(id, holder, commitment(b"share"), 1)
                .unwrap();
        }
        // Only holder 0 reveals.
        contract.reveal(id, 0, b"share", 11).unwrap();
        let summary = contract.finalize(&mut ledger, id, 12).unwrap();
        assert_eq!(summary.slashed, vec![1, 2]);
        assert_eq!(summary.slashed_amount, 2 * BOND);
        assert_eq!(summary.refunded_rewards, 2 * REWARD);
        assert_eq!(ledger.treasury(), 2 * BOND);
        assert_eq!(ledger.balance(3), 1_000 - REWARD);
        assert_eq!(contract.holder_phase(id, 1).unwrap(), HolderPhase::Slashed);
        // Slashed holders cannot claim.
        assert!(matches!(
            contract.claim(&mut ledger, id, 1),
            Err(ContractError::WrongPhase { .. })
        ));
        contract.claim(&mut ledger, id, 0).unwrap();
        assert_eq!(ledger.total_supply(), 4_000);
    }

    #[test]
    fn early_reveal_publishes_but_slashes() {
        let (mut ledger, mut contract, id) = setup();
        for holder in 0..3 {
            contract
                .commit(id, holder, commitment(b"share"), 1)
                .unwrap();
        }
        let phase = contract.reveal(id, 0, b"share", 5).unwrap();
        assert_eq!(phase, HolderPhase::RevealedEarly(5));
        // The payload is public despite being early.
        assert_eq!(
            contract.published(id, 0).unwrap(),
            Some((5, b"share".to_vec()))
        );
        contract.reveal(id, 1, b"share", 10).unwrap();
        contract.reveal(id, 2, b"share", 10).unwrap();
        let summary = contract.finalize(&mut ledger, id, 12).unwrap();
        assert_eq!(summary.slashed, vec![0]);
        assert_eq!(contract.holder_phase(id, 0).unwrap(), HolderPhase::Slashed);
    }

    #[test]
    fn double_claim_is_rejected() {
        let (mut ledger, mut contract, id) = setup();
        contract.commit(id, 0, commitment(b"s"), 1).unwrap();
        contract.reveal(id, 0, b"s", 10).unwrap();
        contract.finalize(&mut ledger, id, 12).unwrap();
        contract.claim(&mut ledger, id, 0).unwrap();
        assert!(matches!(
            contract.claim(&mut ledger, id, 0),
            Err(ContractError::AlreadyClaimed { holder: 0 })
        ));
        assert_eq!(ledger.balance(0), 1_000 + REWARD);
    }

    #[test]
    fn wrong_payload_is_rejected() {
        let (_, mut contract, id) = setup();
        contract.commit(id, 0, commitment(b"right"), 1).unwrap();
        assert!(matches!(
            contract.reveal(id, 0, b"wrong", 10),
            Err(ContractError::CommitmentMismatch { holder: 0 })
        ));
        // The rejection is not a reveal: the holder can still submit the
        // real payload.
        contract.reveal(id, 0, b"right", 10).unwrap();
    }

    #[test]
    fn schedule_violations_are_wrong_phase() {
        let (mut ledger, mut contract, id) = setup();
        contract.commit(id, 0, commitment(b"s"), 1).unwrap();
        // Re-commit.
        assert!(matches!(
            contract.commit(id, 0, commitment(b"s"), 1),
            Err(ContractError::WrongPhase { .. })
        ));
        // Commit after the window opened.
        assert!(matches!(
            contract.commit(id, 1, commitment(b"s"), 10),
            Err(ContractError::WrongPhase { .. })
        ));
        // Reveal without a commitment.
        assert!(matches!(
            contract.reveal(id, 2, b"s", 10),
            Err(ContractError::WrongPhase { .. })
        ));
        // Reveal after the window.
        assert!(matches!(
            contract.reveal(id, 0, b"s", 12),
            Err(ContractError::WrongPhase { .. })
        ));
        // Finalize before the window closes.
        assert!(matches!(
            contract.finalize(&mut ledger, id, 11),
            Err(ContractError::WrongPhase { .. })
        ));
        // Claim before finalization.
        assert!(matches!(
            contract.claim(&mut ledger, id, 0),
            Err(ContractError::WrongPhase { .. })
        ));
        contract.finalize(&mut ledger, id, 12).unwrap();
        // Double finalize.
        assert!(matches!(
            contract.finalize(&mut ledger, id, 13),
            Err(ContractError::WrongPhase { .. })
        ));
    }

    #[test]
    fn open_validates_deadlines_and_funding_atomically() {
        let mut ledger = Ledger::new(3, 50);
        let mut contract = ReleaseContract::new();
        let terms = DepositTerms {
            depositor: 2,
            bond: 100, // more than any holder has
            reveal_reward: 1,
            reveal_from: 5,
            reveal_by: 6,
        };
        assert!(matches!(
            contract.open(&mut ledger, terms, &[0, 1], 0),
            Err(ContractError::InsufficientFunds { .. })
        ));
        // Nothing was locked by the failed open.
        assert_eq!(ledger.escrow(), 0);
        assert_eq!(ledger.balance(0), 50);

        let bad_window = DepositTerms {
            bond: 1,
            reveal_by: 5,
            ..terms
        };
        assert!(matches!(
            contract.open(&mut ledger, bad_window, &[0], 0),
            Err(ContractError::BadDeadline { .. })
        ));
        let past_window = DepositTerms {
            bond: 1,
            reveal_from: 3,
            reveal_by: 9,
            ..terms
        };
        assert!(matches!(
            contract.open(&mut ledger, past_window, &[0], 3),
            Err(ContractError::BadDeadline { .. })
        ));
        assert!(matches!(
            contract.open(&mut ledger, DepositTerms { bond: 1, ..terms }, &[], 0),
            Err(ContractError::InvalidParameters(_))
        ));
    }

    #[test]
    fn duplicate_funding_accounts_open_atomically() {
        // Account 0 holds 150: enough for one bond (100), not two. The
        // per-account aggregation must reject the open up front instead
        // of locking the first bond and stranding it.
        let mut ledger = Ledger::new(2, 150);
        let mut contract = ReleaseContract::new();
        let terms = DepositTerms {
            depositor: 1,
            bond: 100,
            reveal_reward: 10,
            reveal_from: 5,
            reveal_by: 7,
        };
        assert!(matches!(
            contract.open(&mut ledger, terms, &[0, 0], 0),
            Err(ContractError::InsufficientFunds {
                account: 0,
                required: 200,
                ..
            })
        ));
        assert_eq!(ledger.escrow(), 0, "failed open must strand nothing");
        assert_eq!(ledger.balance(0), 150);

        // A depositor that is also a holder needs reward pot + bond
        // combined: 1 · 10 + 100 = 110 > 105.
        let mut ledger = Ledger::new(1, 105);
        assert!(matches!(
            contract.open(
                &mut ledger,
                DepositTerms {
                    depositor: 0,
                    ..terms
                },
                &[0],
                0,
            ),
            Err(ContractError::InsufficientFunds {
                account: 0,
                required: 110,
                ..
            })
        ));
        assert_eq!(ledger.escrow(), 0);

        // With enough combined funds the same shapes succeed and settle.
        let mut ledger = Ledger::new(2, 500);
        let id = contract.open(&mut ledger, terms, &[0, 0], 0).unwrap();
        assert_eq!(ledger.balance(0), 300, "both bonds escrowed");
        for holder in 0..2 {
            contract.commit(id, holder, commitment(b"s"), 1).unwrap();
            contract.reveal(id, holder, b"s", 5).unwrap();
        }
        contract.finalize(&mut ledger, id, 7).unwrap();
        contract.claim(&mut ledger, id, 0).unwrap();
        contract.claim(&mut ledger, id, 1).unwrap();
        assert_eq!(ledger.balance(0), 500 + 2 * 10);
        assert_eq!(ledger.escrow(), 0);
        assert_eq!(ledger.total_supply(), 1_000);
    }

    #[test]
    fn commitment_is_length_prefixed() {
        // "ab" ‖ "c" must not collide with "a" ‖ "bc".
        assert_ne!(commitment(b"abc"), commitment(b"ab\0c"));
        assert_eq!(commitment(b"x"), commitment(b"x"));
    }
}
