//! Shamir `(m, n)` threshold secret sharing over GF(2^8) (Shamir, CACM 1979).
//!
//! The key-share routing scheme (Section III-D of the paper) splits each
//! onion decryption key into `n` shares such that any `m` reconstruct it and
//! any `m − 1` reveal nothing. Sharing is byte-wise: byte `i` of the secret
//! is the constant term of an independent random polynomial of degree
//! `m − 1`, and share `x` carries the evaluations at point `x`.
//!
//! ```
//! use emerge_crypto::shamir::{split, combine};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), emerge_crypto::CryptoError> {
//! let mut rng = StdRng::seed_from_u64(42);
//! let shares = split(b"the onion key", 3, 5, &mut rng)?;
//! // Any three shares reconstruct the secret.
//! let secret = combine(&shares[1..4], 3)?;
//! assert_eq!(secret, b"the onion key");
//! # Ok(())
//! # }
//! ```

use crate::error::CryptoError;
use crate::gf256;
use crate::keys::KeyShare;
use rand::RngCore;

/// Maximum number of shares supported by GF(256) sharing.
pub const MAX_SHARES: usize = 255;

/// Splits `secret` into `n` shares with reconstruction threshold `m`.
///
/// Share indices are `1..=n`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameters`] if `m == 0`, `m > n`, or
/// `n > 255`.
pub fn split<R: RngCore>(
    secret: &[u8],
    m: usize,
    n: usize,
    rng: &mut R,
) -> Result<Vec<KeyShare>, CryptoError> {
    if m == 0 {
        return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
    }
    if m > n {
        return Err(CryptoError::InvalidParameters(
            "threshold m cannot exceed share count n",
        ));
    }
    if n > MAX_SHARES {
        return Err(CryptoError::InvalidParameters(
            "GF(256) sharing supports at most 255 shares",
        ));
    }

    // One polynomial per secret byte, stored as a coefficient slab:
    // `rows[j][i]` is coefficient `j` of byte `i`'s polynomial, so each
    // degree is a contiguous slice and share evaluation becomes slice-wise
    // Horner. Row 0 is the secret itself.
    //
    // The random rows are drawn with the byte-at-a-time call sequence of
    // the pre-slab implementation (one `fill_bytes` of m-1 coefficients
    // per secret byte, then single-byte redraws while the leading
    // coefficient is zero), so the RNG stream — and therefore every
    // package ever derived from a seed — is unchanged.
    let len = secret.len();
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(m);
    rows.push(secret.to_vec());
    for _ in 1..m {
        rows.push(vec![0u8; len]);
    }
    if m > 1 {
        let mut coeffs = vec![0u8; m - 1];
        for i in 0..len {
            rng.fill_bytes(&mut coeffs);
            // The leading coefficient must be non-zero for the polynomial
            // to have true degree m-1; a zero leading coefficient would
            // weaken the threshold by one.
            while coeffs[m - 2] == 0 {
                let mut b = [0u8; 1];
                rng.fill_bytes(&mut b);
                coeffs[m - 2] = b[0];
            }
            for (row, &c) in rows[1..].iter_mut().zip(coeffs.iter()) {
                row[i] = c;
            }
        }
    }

    // Share x = Horner over the coefficient rows, one fused
    // multiply-accumulate slice op per degree.
    let shares = (1..=n as u8)
        .map(|x| {
            let mut acc = rows[m - 1].clone();
            for row in rows[..m - 1].iter().rev() {
                gf256::horner_step_slice(&mut acc, row, x);
            }
            KeyShare::new(x, acc)
        })
        .collect();
    Ok(shares)
}

/// Splits many equal-length secrets with one slab evaluation.
///
/// Semantically `secrets.iter().map(|s| split(s, m, n, rng))`, and
/// **stream-compatible** with it: the coefficient draws happen in the
/// exact per-secret, per-byte call sequence of sequential [`split`]
/// calls, so the RNG ends at the same position and every share value is
/// bit-identical (the property suite pins both). The win is in the
/// evaluation: one Horner walk over a `secrets.len() × len` coefficient
/// slab turns thousands of 32-byte slice kernels into dozens of
/// kilobyte-wide ones, which is where the vectorized GF(256) ladder
/// actually reaches its throughput. This is the share-packaging hot
/// path's kernel: one call per column splits all `n` next-column row
/// keys.
///
/// Returns one share vector per secret: `out[s][i]` is share `i + 1` of
/// `secrets[s]`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameters`] under the same conditions
/// as [`split`], or when the secrets' lengths differ.
pub fn split_many<R: RngCore>(
    secrets: &[&[u8]],
    m: usize,
    n: usize,
    rng: &mut R,
) -> Result<Vec<Vec<KeyShare>>, CryptoError> {
    if m == 0 {
        return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
    }
    if m > n {
        return Err(CryptoError::InvalidParameters(
            "threshold m cannot exceed share count n",
        ));
    }
    if n > MAX_SHARES {
        return Err(CryptoError::InvalidParameters(
            "GF(256) sharing supports at most 255 shares",
        ));
    }
    let Some(first) = secrets.first() else {
        return Ok(Vec::new());
    };
    let len = first.len();
    if secrets.iter().any(|s| s.len() != len) {
        return Err(CryptoError::InvalidParameters(
            "split_many requires equal-length secrets",
        ));
    }

    // Coefficient slab across all secrets: `rows[j][s*len + i]` is
    // coefficient `j` of byte `i` of secret `s`'s polynomial.
    let total = len * secrets.len();
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(m);
    let mut row0 = Vec::with_capacity(total);
    for secret in secrets {
        row0.extend_from_slice(secret);
    }
    rows.push(row0);
    for _ in 1..m {
        rows.push(vec![0u8; total]);
    }
    if m > 1 {
        let mut coeffs = vec![0u8; m - 1];
        for s in 0..secrets.len() {
            for i in 0..len {
                rng.fill_bytes(&mut coeffs);
                while coeffs[m - 2] == 0 {
                    let mut b = [0u8; 1];
                    rng.fill_bytes(&mut b);
                    coeffs[m - 2] = b[0];
                }
                for (row, &c) in rows[1..].iter_mut().zip(coeffs.iter()) {
                    row[s * len + i] = c;
                }
            }
        }
    }

    // One slab-wide Horner per share point.
    let mut out: Vec<Vec<KeyShare>> = (0..secrets.len()).map(|_| Vec::with_capacity(n)).collect();
    let mut acc = vec![0u8; total];
    for x in 1..=n as u8 {
        acc.copy_from_slice(&rows[m - 1]);
        for row in rows[..m - 1].iter().rev() {
            gf256::horner_step_slice(&mut acc, row, x);
        }
        for (s, shares) in out.iter_mut().enumerate() {
            shares.push(KeyShare::new(x, acc[s * len..(s + 1) * len].to_vec()));
        }
    }
    Ok(out)
}

/// A reusable share slab: the allocation-free counterpart of
/// [`split_many`] for pooled hot loops.
///
/// [`ShareSlab::split_flat`] takes the secrets as one concatenated byte
/// string and writes every share into an internal slab that is recycled
/// across calls — after the first call at a given shape, splitting
/// allocates nothing. Share bytes are bit-identical to [`split_many`]
/// (and therefore to sequential [`split`] calls), and the RNG is left at
/// the same stream position; the property suite pins both.
#[derive(Debug, Default, Clone)]
pub struct ShareSlab {
    /// Share-major slab: share `x` of secret `s` lives at
    /// `[(x-1)·count·len + s·len ..][..len]`.
    data: Vec<u8>,
    /// Coefficient rows, reused across calls (grown to the largest `m`).
    rows: Vec<Vec<u8>>,
    /// Per-byte coefficient draw scratch.
    coeffs: Vec<u8>,
    count: usize,
    len: usize,
    n: usize,
}

impl ShareSlab {
    /// Creates an empty slab; buffers grow on first use and are then
    /// recycled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits the `secrets.len() / len` concatenated `len`-byte secrets
    /// in `secrets` into `n` shares each with threshold `m`, replacing
    /// the slab's previous contents.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameters`] under the same
    /// conditions as [`split`], or when `secrets` is not a whole number
    /// of `len`-byte secrets.
    pub fn split_flat<R: RngCore>(
        &mut self,
        secrets: &[u8],
        len: usize,
        m: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<(), CryptoError> {
        if m == 0 {
            return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
        }
        if m > n {
            return Err(CryptoError::InvalidParameters(
                "threshold m cannot exceed share count n",
            ));
        }
        if n > MAX_SHARES {
            return Err(CryptoError::InvalidParameters(
                "GF(256) sharing supports at most 255 shares",
            ));
        }
        if len == 0 {
            if !secrets.is_empty() {
                return Err(CryptoError::InvalidParameters(
                    "zero-length secrets cannot carry bytes",
                ));
            }
        } else if !secrets.len().is_multiple_of(len) {
            return Err(CryptoError::InvalidParameters(
                "flat secrets must be a whole number of len-byte secrets",
            ));
        }
        let count = secrets.len().checked_div(len).unwrap_or(0);
        let total = secrets.len();
        self.count = count;
        self.len = len;
        self.n = n;

        // Coefficient rows, identical layout and draw order to
        // `split_many`: `rows[j][s*len + i]` is coefficient `j` of byte
        // `i` of secret `s`, drawn per-secret, per-byte.
        while self.rows.len() < m {
            self.rows.push(Vec::new());
        }
        for row in &mut self.rows[..m] {
            row.clear();
            row.resize(total, 0);
        }
        self.rows[0].copy_from_slice(secrets);
        if m > 1 {
            self.coeffs.clear();
            self.coeffs.resize(m - 1, 0);
            for s in 0..count {
                for i in 0..len {
                    rng.fill_bytes(&mut self.coeffs);
                    while self.coeffs[m - 2] == 0 {
                        let mut b = [0u8; 1];
                        rng.fill_bytes(&mut b);
                        self.coeffs[m - 2] = b[0];
                    }
                    for (row, &c) in self.rows[1..m].iter_mut().zip(self.coeffs.iter()) {
                        row[s * len + i] = c;
                    }
                }
            }
        }

        // One slab-wide Horner per share point, evaluated directly into
        // the share region so no per-share vectors exist at all.
        self.data.clear();
        self.data.resize(n * total, 0);
        let rows = &self.rows;
        for x in 1..=n as u8 {
            let region = &mut self.data[(x as usize - 1) * total..x as usize * total];
            region.copy_from_slice(&rows[m - 1]);
            for row in rows[..m - 1].iter().rev() {
                gf256::horner_step_slice(region, row, x);
            }
        }
        Ok(())
    }

    /// The bytes of share `x` (1-based) of secret `secret_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `secret_idx` or `x` is out of range for the last split.
    pub fn share(&self, secret_idx: usize, x: u8) -> &[u8] {
        // LINT-WAIVER(panic): documented # Panics contract: share coordinates must be in range for the split
        assert!(secret_idx < self.count && x >= 1 && x as usize <= self.n);
        let base = (x as usize - 1) * self.count * self.len + secret_idx * self.len;
        &self.data[base..base + self.len]
    }

    /// Number of secrets in the last split.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Byte length of each secret in the last split.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab currently holds no shares.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Share count `n` of the last split.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Reconstructs a secret from shares stored in a flat slab, writing into
/// a caller-owned buffer: the allocation-free counterpart of
/// [`combine_cached`].
///
/// `indices[i]` is the share index of the `len`-byte share at
/// `data[i*len..][..len]`. The first `m` distinct-index shares are used,
/// exactly as [`combine`] selects them, and the output bytes are
/// bit-identical. `out` is cleared and overwritten.
///
/// # Errors
///
/// Same contract as [`combine`] (uniform lengths are structural here).
pub fn combine_slab_cached_into(
    indices: &[u8],
    data: &[u8],
    len: usize,
    m: usize,
    cache: &mut WeightCache,
    out: &mut Vec<u8>,
) -> Result<(), CryptoError> {
    if m == 0 {
        return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
    }
    debug_assert_eq!(data.len(), indices.len() * len);
    let mut seen = [false; 256];
    let mut chosen = [0u16; MAX_SHARES];
    let mut xs = [0u8; MAX_SHARES];
    let mut picked = 0usize;
    for (pos, &x) in indices.iter().enumerate() {
        if x == 0 {
            return Err(CryptoError::MalformedShare("share index 0 is reserved"));
        }
        if !seen[x as usize] {
            seen[x as usize] = true;
            chosen[picked] = pos as u16;
            xs[picked] = x;
            picked += 1;
            if picked == m {
                break;
            }
        }
    }
    if picked < m {
        return Err(CryptoError::NotEnoughShares {
            threshold: m,
            supplied: picked,
        });
    }
    let weights = cache.weights_for(&xs[..m]);
    out.clear();
    out.resize(len, 0);
    for (&pos, &w) in chosen[..m].iter().zip(weights.iter()) {
        let share = &data[pos as usize * len..(pos as usize + 1) * len];
        gf256::mul_acc_slice(out, share, w);
    }
    Ok(())
}

/// Reconstructs the secret from at least `m` shares.
///
/// Extra shares beyond `m` are ignored (the first `m` distinct indices are
/// used). All shares must have the same length.
///
/// # Errors
///
/// * [`CryptoError::NotEnoughShares`] if fewer than `m` distinct-index
///   shares are supplied.
/// * [`CryptoError::MalformedShare`] if a share has index 0, or the share
///   lengths disagree.
pub fn combine(shares: &[KeyShare], m: usize) -> Result<Vec<u8>, CryptoError> {
    combine_cached(shares, m, &mut WeightCache::default())
}

/// A one-entry memo of the Lagrange-at-zero weight vector, keyed by the
/// share-index set.
///
/// The protocol executor reconstructs a different 32-byte key for every
/// holder of a column, but all of them carry shares from the *same*
/// surviving sender rows — identical index sets, identical weights. With
/// the weights memoized, the `O(m²)` basis computation runs once per
/// distinct index set instead of once per reconstruction, leaving only
/// the `O(m·len)` accumulate per key. Reconstructed secrets are
/// bit-identical (weights depend only on the indices).
#[derive(Debug, Clone, Default)]
pub struct WeightCache {
    xs: Vec<u8>,
    weights: Vec<u8>,
}

impl WeightCache {
    /// The weights for `xs`, recomputed only when `xs` differs from the
    /// previous call's.
    fn weights_for(&mut self, xs: &[u8]) -> &[u8] {
        if self.xs != xs {
            // The `_into` form recomputes into the retained buffer, so a
            // warm cache stays allocation-free even across index-set
            // changes (different trials see different survivor sets).
            gf256::lagrange_weights_at_zero_into(xs, &mut self.weights);
            self.xs.clear();
            self.xs.extend_from_slice(xs);
        }
        &self.weights
    }
}

/// [`combine`] with a caller-held [`WeightCache`], for reconstruction
/// loops that combine many share sets with the same indices.
///
/// # Errors
///
/// Identical to [`combine`].
pub fn combine_cached(
    shares: &[KeyShare],
    m: usize,
    cache: &mut WeightCache,
) -> Result<Vec<u8>, CryptoError> {
    if m == 0 {
        return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
    }
    // Deduplicate indices, preserving order.
    let mut seen = [false; 256];
    let mut distinct: Vec<&KeyShare> = Vec::with_capacity(m);
    for share in shares {
        if share.index == 0 {
            return Err(CryptoError::MalformedShare("share index 0 is reserved"));
        }
        if !seen[share.index as usize] {
            seen[share.index as usize] = true;
            distinct.push(share);
            if distinct.len() == m {
                break;
            }
        }
    }
    if distinct.len() < m {
        return Err(CryptoError::NotEnoughShares {
            threshold: m,
            supplied: distinct.len(),
        });
    }
    let len = distinct[0].data.len();
    if distinct.iter().any(|s| s.data.len() != len) {
        return Err(CryptoError::MalformedShare("share lengths disagree"));
    }

    // Lagrange weights once per share set (not once per byte), then one
    // λ_i·share_i slice-accumulate per share. The field arithmetic is
    // identical to per-byte interpolation, so the secret is bit-for-bit
    // the same.
    let xs: Vec<u8> = distinct.iter().map(|s| s.index).collect();
    let weights = cache.weights_for(&xs);
    let mut secret = vec![0u8; len];
    for (share, &w) in distinct.iter().zip(weights.iter()) {
        gf256::mul_acc_slice(&mut secret, &share.data, w);
    }
    Ok(secret)
}

/// The pre-slab byte-at-a-time implementation, kept verbatim as the
/// bit-identity oracle for the batched kernels.
#[cfg(test)]
mod reference {
    use super::*;

    pub fn split<R: RngCore>(
        secret: &[u8],
        m: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<KeyShare>, CryptoError> {
        if m == 0 {
            return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
        }
        if m > n {
            return Err(CryptoError::InvalidParameters(
                "threshold m cannot exceed share count n",
            ));
        }
        if n > MAX_SHARES {
            return Err(CryptoError::InvalidParameters(
                "GF(256) sharing supports at most 255 shares",
            ));
        }
        let mut shares: Vec<KeyShare> = (1..=n as u8)
            .map(|x| KeyShare::new(x, Vec::with_capacity(secret.len())))
            .collect();
        let mut coeffs = vec![0u8; m];
        for &byte in secret {
            coeffs[0] = byte;
            if m > 1 {
                let tail = &mut coeffs[1..];
                rng.fill_bytes(tail);
                while tail[m - 2] == 0 {
                    let mut b = [0u8; 1];
                    rng.fill_bytes(&mut b);
                    tail[m - 2] = b[0];
                }
            }
            for share in &mut shares {
                share.data.push(gf256::poly_eval(&coeffs, share.index));
            }
        }
        Ok(shares)
    }

    pub fn combine(shares: &[KeyShare], m: usize) -> Result<Vec<u8>, CryptoError> {
        if m == 0 {
            return Err(CryptoError::InvalidParameters("threshold m must be >= 1"));
        }
        let mut seen = [false; 256];
        let mut distinct: Vec<&KeyShare> = Vec::with_capacity(m);
        for share in shares {
            if share.index == 0 {
                return Err(CryptoError::MalformedShare("share index 0 is reserved"));
            }
            if !seen[share.index as usize] {
                seen[share.index as usize] = true;
                distinct.push(share);
                if distinct.len() == m {
                    break;
                }
            }
        }
        if distinct.len() < m {
            return Err(CryptoError::NotEnoughShares {
                threshold: m,
                supplied: distinct.len(),
            });
        }
        let len = distinct[0].data.len();
        if distinct.iter().any(|s| s.data.len() != len) {
            return Err(CryptoError::MalformedShare("share lengths disagree"));
        }
        let mut secret = Vec::with_capacity(len);
        let mut points = vec![(0u8, 0u8); m];
        for byte_idx in 0..len {
            for (slot, share) in points.iter_mut().zip(distinct.iter()) {
                *slot = (share.index, share.data[byte_idx]);
            }
            secret.push(gf256::interpolate_at_zero(&points));
        }
        Ok(secret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn basic_roundtrip() {
        let mut r = rng();
        let shares = split(b"hello shamir", 3, 5, &mut r).unwrap();
        assert_eq!(shares.len(), 5);
        assert_eq!(combine(&shares, 3).unwrap(), b"hello shamir");
    }

    #[test]
    fn exactly_threshold_shares_suffice() {
        let mut r = rng();
        let shares = split(b"secret", 4, 7, &mut r).unwrap();
        let subset = &shares[3..7];
        assert_eq!(combine(subset, 4).unwrap(), b"secret");
    }

    #[test]
    fn below_threshold_fails() {
        let mut r = rng();
        let shares = split(b"secret", 4, 7, &mut r).unwrap();
        let err = combine(&shares[..3], 4).unwrap_err();
        assert_eq!(
            err,
            CryptoError::NotEnoughShares {
                threshold: 4,
                supplied: 3
            }
        );
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let mut r = rng();
        let shares = split(b"secret", 3, 5, &mut r).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone(), shares[0].clone()];
        assert!(matches!(
            combine(&dup, 3),
            Err(CryptoError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn one_of_one_sharing_is_the_secret_degenerate_case() {
        let mut r = rng();
        let shares = split(b"x", 1, 1, &mut r).unwrap();
        // With m = 1 the polynomial is constant: the share IS the secret.
        assert_eq!(shares[0].data, b"x");
        assert_eq!(combine(&shares, 1).unwrap(), b"x");
    }

    #[test]
    fn m_zero_rejected() {
        let mut r = rng();
        assert!(matches!(
            split(b"s", 0, 3, &mut r),
            Err(CryptoError::InvalidParameters(_))
        ));
        assert!(matches!(
            combine(&[], 0),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn m_greater_than_n_rejected() {
        let mut r = rng();
        assert!(matches!(
            split(b"s", 4, 3, &mut r),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn too_many_shares_rejected() {
        let mut r = rng();
        assert!(matches!(
            split(b"s", 2, 256, &mut r),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn index_zero_share_rejected() {
        let bad = vec![KeyShare::new(0, vec![1, 2, 3])];
        assert!(matches!(
            combine(&bad, 1),
            Err(CryptoError::MalformedShare(_))
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut r = rng();
        let mut shares = split(b"abcd", 2, 3, &mut r).unwrap();
        shares[1].data.pop();
        assert!(matches!(
            combine(&shares[..2], 2),
            Err(CryptoError::MalformedShare(_))
        ));
    }

    #[test]
    fn empty_secret_roundtrip() {
        let mut r = rng();
        let shares = split(b"", 2, 3, &mut r).unwrap();
        assert_eq!(combine(&shares, 2).unwrap(), b"");
    }

    #[test]
    fn shares_leak_nothing_individually() {
        // Statistical smoke test: a single share of two different secrets
        // should not let us distinguish them by simple equality patterns.
        // (Real secrecy is information-theoretic by construction; here we
        // just confirm shares differ from the secret bytes.)
        let mut r = rng();
        let secret = [0u8; 64];
        let shares = split(&secret, 2, 3, &mut r).unwrap();
        for share in &shares {
            assert_ne!(share.data, secret.to_vec());
        }
    }

    proptest! {
        /// The slab split is bit-identical to the pre-refactor scalar
        /// split: same shares AND same RNG stream position afterwards.
        #[test]
        fn slab_split_matches_scalar_reference(
            secret in proptest::collection::vec(any::<u8>(), 0..64),
            m in 1usize..8,
            extra in 0usize..6,
            seed: u64,
        ) {
            let n = m + extra;
            let mut fast_rng = StdRng::seed_from_u64(seed);
            let mut ref_rng = StdRng::seed_from_u64(seed);
            let fast = split(&secret, m, n, &mut fast_rng).unwrap();
            let reference = reference::split(&secret, m, n, &mut ref_rng).unwrap();
            prop_assert_eq!(fast.len(), reference.len());
            for (f, r) in fast.iter().zip(&reference) {
                prop_assert_eq!(f.index, r.index);
                prop_assert_eq!(&f.data, &r.data);
            }
            // Both implementations must leave the RNG at the same point:
            // a stream drift would silently desynchronize every later
            // draw in a key schedule.
            prop_assert_eq!(fast_rng.next_u64(), ref_rng.next_u64());
        }

        /// The batched multi-secret split is bit-identical to sequential
        /// single-secret splits: same shares AND same RNG stream position
        /// afterwards.
        #[test]
        fn split_many_matches_sequential_splits(
            count in 0usize..6,
            len in 1usize..40,
            m in 1usize..8,
            extra in 0usize..6,
            seed: u64,
        ) {
            let n = m + extra;
            let secrets: Vec<Vec<u8>> = (0..count)
                .map(|s| (0..len).map(|i| (s * 131 + i * 7 + 1) as u8).collect())
                .collect();
            let views: Vec<&[u8]> = secrets.iter().map(|s| s.as_slice()).collect();
            let mut batch_rng = StdRng::seed_from_u64(seed);
            let mut seq_rng = StdRng::seed_from_u64(seed);
            let batch = split_many(&views, m, n, &mut batch_rng).unwrap();
            let sequential: Vec<Vec<KeyShare>> = secrets
                .iter()
                .map(|s| split(s, m, n, &mut seq_rng).unwrap())
                .collect();
            prop_assert_eq!(&batch, &sequential);
            prop_assert_eq!(batch_rng.next_u64(), seq_rng.next_u64());
        }

        /// The weight-based combine is bit-identical to per-byte Lagrange
        /// interpolation, including with extra and duplicate shares.
        #[test]
        fn batched_combine_matches_scalar_reference(
            secret in proptest::collection::vec(any::<u8>(), 0..64),
            m in 1usize..8,
            extra in 0usize..6,
            dup_first: bool,
            seed: u64,
        ) {
            let n = m + extra;
            let mut r = StdRng::seed_from_u64(seed);
            let mut shares = split(&secret, m, n, &mut r).unwrap();
            if dup_first {
                shares.insert(0, shares[0].clone());
            }
            prop_assert_eq!(
                combine(&shares, m).unwrap(),
                reference::combine(&shares, m).unwrap()
            );
        }

        /// The pooled slab split is bit-identical to `split_many` — same
        /// share bytes AND same RNG stream position — and a reused slab
        /// behaves exactly like a fresh one.
        #[test]
        fn share_slab_matches_split_many(
            count in 0usize..6,
            len in 1usize..40,
            m in 1usize..8,
            extra in 0usize..6,
            seed: u64,
        ) {
            let n = m + extra;
            let secrets: Vec<Vec<u8>> = (0..count)
                .map(|s| (0..len).map(|i| (s * 131 + i * 7 + 1) as u8).collect())
                .collect();
            let views: Vec<&[u8]> = secrets.iter().map(|s| s.as_slice()).collect();
            let flat: Vec<u8> = secrets.concat();

            let mut vec_rng = StdRng::seed_from_u64(seed);
            let reference = split_many(&views, m, n, &mut vec_rng).unwrap();

            // Dirty the slab with a different shape first: reuse must not
            // leak state between splits.
            let mut slab = ShareSlab::new();
            let mut warm_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            slab.split_flat(&[7u8; 24], 8, 2.min(n), 3.max(n), &mut warm_rng).unwrap();

            let mut slab_rng = StdRng::seed_from_u64(seed);
            slab.split_flat(&flat, len, m, n, &mut slab_rng).unwrap();
            prop_assert_eq!(slab.count(), count);
            for (s, shares) in reference.iter().enumerate() {
                for share in shares {
                    prop_assert_eq!(slab.share(s, share.index), &share.data[..]);
                }
            }
            prop_assert_eq!(slab_rng.next_u64(), vec_rng.next_u64());
        }

        /// The slab combine is bit-identical to `combine`, including its
        /// duplicate-index handling and first-m-distinct selection.
        #[test]
        fn combine_slab_matches_vec_combine(
            secret in proptest::collection::vec(any::<u8>(), 1..48),
            m in 1usize..8,
            extra in 0usize..6,
            dup_first: bool,
            seed: u64,
        ) {
            let n = m + extra;
            let mut r = StdRng::seed_from_u64(seed);
            let mut shares = split(&secret, m, n, &mut r).unwrap();
            if dup_first {
                shares.insert(0, shares[0].clone());
            }
            let indices: Vec<u8> = shares.iter().map(|s| s.index).collect();
            let data: Vec<u8> = shares.iter().flat_map(|s| s.data.clone()).collect();
            let mut cache = WeightCache::default();
            let mut out = Vec::new();
            combine_slab_cached_into(&indices, &data, secret.len(), m, &mut cache, &mut out)
                .unwrap();
            prop_assert_eq!(&out, &combine(&shares, m).unwrap());
            // Under-threshold errors match too.
            if m > 1 {
                let short = m - 1;
                let e_slab = combine_slab_cached_into(
                    &indices[..short], &data[..short * secret.len()],
                    secret.len(), m, &mut cache, &mut out,
                );
                prop_assert_eq!(e_slab.unwrap_err(), combine(&shares[..short], m).unwrap_err());
            }
        }

        #[test]
        fn roundtrip_any_secret(
            secret in proptest::collection::vec(any::<u8>(), 0..64),
            m in 1usize..6,
            extra in 0usize..4,
            seed: u64,
        ) {
            let n = m + extra;
            let mut r = StdRng::seed_from_u64(seed);
            let shares = split(&secret, m, n, &mut r).unwrap();
            prop_assert_eq!(combine(&shares, m).unwrap(), secret.clone());
            // Reconstruction from the LAST m shares also works.
            prop_assert_eq!(combine(&shares[n - m..], m).unwrap(), secret);
        }

        #[test]
        fn any_m_subset_reconstructs(seed: u64) {
            let mut r = StdRng::seed_from_u64(seed);
            let secret = b"threshold property";
            let (m, n) = (3usize, 6usize);
            let shares = split(secret, m, n, &mut r).unwrap();
            for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        let subset = [shares[i].clone(), shares[j].clone(), shares[k].clone()];
                        prop_assert_eq!(combine(&subset, m).unwrap(), secret.to_vec());
                    }
                }
            }
        }

        #[test]
        fn below_threshold_is_not_the_secret(seed: u64) {
            // m-1 shares interpolated as if they were an (m-1)-sharing must
            // not (except with negligible probability) yield the secret.
            let mut r = StdRng::seed_from_u64(seed);
            let secret = vec![0xA5u8; 32];
            let shares = split(&secret, 3, 5, &mut r).unwrap();
            let wrong = combine(&shares[..2], 2).unwrap();
            prop_assert_ne!(wrong, secret);
        }
    }
}
