//! Layered ("onion") packaging for self-emerging key routing.
//!
//! Following Reed/Syverson/Goldschlag onion routing as used by the paper,
//! the sender wraps the secret in `l` encryption layers. The holder at hop
//! `j` peels exactly one layer with its column key `K_j`, revealing:
//!
//! * a per-hop **payload** (next-hop IDs, Shamir shares to forward, hold
//!   durations — whatever the scheme puts there), and
//! * the **inner onion** to forward to the next hop.
//!
//! The innermost layer carries the core payload (the protected secret key of
//! the self-emerging message). Layers are sealed with ChaCha20-Poly1305, so
//! a holder cannot see *or undetectably modify* anything beneath its own
//! layer.
//!
//! ```
//! use emerge_crypto::keys::SymmetricKey;
//! use emerge_crypto::onion::{build_onion, peel, Peeled};
//!
//! # fn main() -> Result<(), emerge_crypto::CryptoError> {
//! let k1 = SymmetricKey::from_bytes([1u8; 32]);
//! let k2 = SymmetricKey::from_bytes([2u8; 32]);
//! let onion = build_onion(&[(&k1, b"hop-1 data"), (&k2, b"hop-2 data")], b"the secret");
//!
//! let Peeled::Intermediate { payload, inner } = peel(&k1, &onion)? else { panic!() };
//! assert_eq!(payload, b"hop-1 data");
//! let Peeled::Core { payload } = peel(&k2, &inner)? else { panic!() };
//! assert_eq!(payload, b"the secret");
//! # Ok(())
//! # }
//! ```

use crate::aead;
use crate::error::CryptoError;
use crate::keys::SymmetricKey;
use crate::wire::{Reader, Writer};

/// Domain separation string authenticated with every onion layer.
const ONION_AAD: &[u8] = b"emerge-onion-v1";
/// Marks a layer that contains a further onion beneath it.
const TAG_INTERMEDIATE: u8 = 1;
/// Marks the innermost layer.
const TAG_CORE: u8 = 0;

/// The result of peeling one onion layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peeled {
    /// An intermediate layer: per-hop payload plus the onion to forward.
    Intermediate {
        /// Data addressed to this hop's holder.
        payload: Vec<u8>,
        /// The remaining onion, to forward to the next hop.
        inner: Vec<u8>,
    },
    /// The innermost layer: the protected core payload.
    Core {
        /// The core data (the self-emerging secret key).
        payload: Vec<u8>,
    },
}

/// Builds an onion with the given layers (outermost first) around `core`.
///
/// Layer `j` is decryptable with `layers[j].0`; peeling it yields
/// `layers[j].1` as the per-hop payload. Peeling the final layer yields
/// `core`.
///
/// An empty `layers` slice produces a single-layer onion — but that layer
/// still needs a key, so the degenerate "no hops at all" case is expressed
/// as `build_onion(&[(&key, b"")], core)` with one hop. This function
/// panics on a truly empty layer list because the result would be
/// unencrypted.
///
/// # Panics
///
/// Panics if `layers` is empty.
pub fn build_onion(layers: &[(&SymmetricKey, &[u8])], core: &[u8]) -> Vec<u8> {
    // LINT-WAIVER(panic): documented # Panics contract: an onion needs at least one layer
    assert!(
        !layers.is_empty(),
        "an onion needs at least one layer key; refusing to emit plaintext"
    );

    // Innermost layer: the last key wraps the core together with the last
    // hop's payload.
    let (last_key, last_payload) = layers[layers.len() - 1];
    let mut w = Writer::new();
    w.put_u8(TAG_CORE).put_bytes(last_payload).put_bytes(core);
    let mut onion = seal_layer(last_key, &w.into_bytes());

    // Wrap outward.
    for &(key, payload) in layers[..layers.len() - 1].iter().rev() {
        let mut w = Writer::new();
        w.put_u8(TAG_INTERMEDIATE)
            .put_bytes(payload)
            .put_bytes(&onion);
        onion = seal_layer(key, &w.into_bytes());
    }
    onion
}

/// Peels one layer of `onion` with `key`.
///
/// # Errors
///
/// Returns [`CryptoError::AuthenticationFailed`] for a wrong key or a
/// tampered layer, and [`CryptoError::Malformed`] /
/// [`CryptoError::InvalidLength`] for structurally invalid plaintext.
pub fn peel(key: &SymmetricKey, onion: &[u8]) -> Result<Peeled, CryptoError> {
    let nonce = key.derive_nonce(b"onion-layer");
    let plain = aead::open(key, &nonce, onion, ONION_AAD)?;
    let mut r = Reader::new(&plain);
    let tag = r.get_u8()?;
    match tag {
        TAG_CORE => {
            // Core layers also carry a final-hop payload; the caller that
            // wants just the core reads `payload` of Peeled::Core after the
            // hop payload. Layout: tag, hop payload, core payload.
            let _hop_payload = r.get_bytes()?.to_vec();
            let core = r.get_bytes()?.to_vec();
            r.expect_end()?;
            Ok(Peeled::Core { payload: core })
        }
        TAG_INTERMEDIATE => {
            let payload = r.get_bytes()?.to_vec();
            let inner = r.get_bytes()?.to_vec();
            r.expect_end()?;
            Ok(Peeled::Intermediate { payload, inner })
        }
        _ => Err(CryptoError::Malformed("unknown onion layer tag")),
    }
}

/// Peels the innermost layer, returning both the final hop payload and the
/// core. Use this when the terminal holder needs its hop payload too.
pub fn peel_core(key: &SymmetricKey, onion: &[u8]) -> Result<(Vec<u8>, Vec<u8>), CryptoError> {
    let nonce = key.derive_nonce(b"onion-layer");
    let plain = aead::open(key, &nonce, onion, ONION_AAD)?;
    let mut r = Reader::new(&plain);
    let tag = r.get_u8()?;
    // LINT-WAIVER(ct): the layer tag is a public wire discriminant, not secret data; its value is implied by the message shape
    if tag != TAG_CORE {
        return Err(CryptoError::Malformed(
            "expected core onion layer, found intermediate",
        ));
    }
    let hop_payload = r.get_bytes()?.to_vec();
    let core = r.get_bytes()?.to_vec();
    r.expect_end()?;
    Ok((hop_payload, core))
}

fn seal_layer(key: &SymmetricKey, plaintext: &[u8]) -> Vec<u8> {
    let nonce = key.derive_nonce(b"onion-layer");
    aead::seal(key, &nonce, plaintext, ONION_AAD)
}

/// Which kind of layer [`peel_in_place`] uncovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// An intermediate layer; the buffer now holds the inner onion.
    Intermediate,
    /// The innermost layer; the buffer now holds the core payload.
    Core,
}

/// Peels one layer of the onion in `onion` in place.
///
/// On success the hop payload is copied into `payload` (cleared first) and
/// `onion` is rewritten to hold the inner onion (for
/// [`LayerKind::Intermediate`]) or the core payload (for
/// [`LayerKind::Core`]) — so repeated calls walk the whole path with two
/// reused buffers and no allocation once their capacities are warm.
/// Byte-for-byte equivalent to [`peel`] / [`peel_core`].
///
/// # Errors
///
/// Same contract as [`peel`]; on an authentication error `onion` is left
/// unmodified.
pub fn peel_in_place(
    key: &SymmetricKey,
    onion: &mut Vec<u8>,
    payload: &mut Vec<u8>,
) -> Result<LayerKind, CryptoError> {
    let nonce = key.derive_nonce(b"onion-layer");
    aead::open_in_place(key, &nonce, onion, ONION_AAD)?;
    // Parse spans first, then rearrange the buffer; layout is
    // tag(1) | len(4) payload | len(4) inner-or-core.
    let (kind, payload_span, rest_span) = {
        let mut r = Reader::new(onion);
        let tag = r.get_u8()?;
        let kind = match tag {
            TAG_CORE => LayerKind::Core,
            TAG_INTERMEDIATE => LayerKind::Intermediate,
            _ => return Err(CryptoError::Malformed("unknown onion layer tag")),
        };
        let p_len = r.get_u32()? as usize;
        let p_start = r.position();
        r.get_raw(p_len)?;
        let rest_len = r.get_u32()? as usize;
        let rest_start = r.position();
        r.get_raw(rest_len)?;
        r.expect_end()?;
        (
            kind,
            p_start..p_start + p_len,
            rest_start..rest_start + rest_len,
        )
    };
    payload.clear();
    payload.extend_from_slice(&onion[payload_span]);
    let rest_len = rest_span.len();
    onion.copy_within(rest_span, 0);
    onion.truncate(rest_len);
    Ok(kind)
}

/// Builds the same onion as [`build_onion`] into a caller-owned buffer.
///
/// `onion` receives the finished onion; `scratch` is layer plaintext
/// scratch. Both are cleared and reused, so a warm caller allocates
/// nothing.
pub fn build_onion_into(
    layers: &[(&SymmetricKey, &[u8])],
    core: &[u8],
    onion: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
) {
    // LINT-WAIVER(panic): documented # Panics precondition on the onion layer arguments
    assert!(
        !layers.is_empty(),
        "an onion needs at least one layer key; refusing to emit plaintext"
    );
    // Innermost layer: the last key wraps the core with the last payload.
    let (last_key, last_payload) = layers[layers.len() - 1];
    onion.clear();
    onion.push(TAG_CORE);
    onion.extend_from_slice(&(last_payload.len() as u32).to_le_bytes());
    onion.extend_from_slice(last_payload);
    onion.extend_from_slice(&(core.len() as u32).to_le_bytes());
    onion.extend_from_slice(core);
    let nonce = last_key.derive_nonce(b"onion-layer");
    aead::seal_in_place(last_key, &nonce, onion, ONION_AAD);

    // Wrap outward, ping-ponging plaintext through `scratch`.
    for &(key, payload) in layers[..layers.len() - 1].iter().rev() {
        scratch.clear();
        scratch.push(TAG_INTERMEDIATE);
        scratch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        scratch.extend_from_slice(payload);
        scratch.extend_from_slice(&(onion.len() as u32).to_le_bytes());
        scratch.extend_from_slice(onion);
        let nonce = key.derive_nonce(b"onion-layer");
        aead::seal_in_place(key, &nonce, scratch, ONION_AAD);
        std::mem::swap(onion, scratch);
    }
}

/// Builds an onion whose per-hop payloads are all empty, into
/// caller-owned buffers — byte-identical to
/// `build_onion(&[(k_0, b""), ...], core)` (pinned by test).
///
/// This is the share scheme's core-onion shape: the hop data travels in
/// the segment table, so the onion carries only the layered core. Taking
/// the keys as a plain slice lets a pooled caller avoid materializing
/// the `&[(&SymmetricKey, &[u8])]` layer list every trial.
///
/// # Panics
///
/// Panics if `keys` is empty, like [`build_onion`].
pub fn build_onion_empty_into(
    keys: &[SymmetricKey],
    core: &[u8],
    onion: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
) {
    // LINT-WAIVER(panic): documented # Panics precondition on the onion layer arguments
    assert!(
        !keys.is_empty(),
        "an onion needs at least one layer key; refusing to emit plaintext"
    );
    let last_key = &keys[keys.len() - 1];
    onion.clear();
    onion.push(TAG_CORE);
    onion.extend_from_slice(&0u32.to_le_bytes());
    onion.extend_from_slice(&(core.len() as u32).to_le_bytes());
    onion.extend_from_slice(core);
    let nonce = last_key.derive_nonce(b"onion-layer");
    aead::seal_in_place(last_key, &nonce, onion, ONION_AAD);

    for key in keys[..keys.len() - 1].iter().rev() {
        scratch.clear();
        scratch.push(TAG_INTERMEDIATE);
        scratch.extend_from_slice(&0u32.to_le_bytes());
        scratch.extend_from_slice(&(onion.len() as u32).to_le_bytes());
        scratch.extend_from_slice(onion);
        let nonce = key.derive_nonce(b"onion-layer");
        aead::seal_in_place(key, &nonce, scratch, ONION_AAD);
        std::mem::swap(onion, scratch);
    }
}

/// Computes the serialized size of an onion with the given per-layer
/// payload sizes (outermost first) and core size, without building it.
///
/// Useful for capacity planning in the schemes and asserted against real
/// onions in tests.
pub fn onion_size(payload_sizes: &[usize], core_size: usize) -> usize {
    // LINT-WAIVER(panic): documented # Panics contract: the size formula needs at least one layer
    assert!(!payload_sizes.is_empty());
    // Innermost: tag(1) + len(4) + payload + len(4) + core, plus AEAD tag.
    let last = payload_sizes[payload_sizes.len() - 1];
    let mut size = 1 + 4 + last + 4 + core_size + aead::OVERHEAD;
    for &p in payload_sizes[..payload_sizes.len() - 1].iter().rev() {
        size = 1 + 4 + p + 4 + size + aead::OVERHEAD;
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(b: u8) -> SymmetricKey {
        SymmetricKey::from_bytes([b; 32])
    }

    #[test]
    fn three_layer_roundtrip() {
        let keys = [key(1), key(2), key(3)];
        let onion = build_onion(
            &[
                (&keys[0], b"to hop 1"),
                (&keys[1], b"to hop 2"),
                (&keys[2], b"to hop 3"),
            ],
            b"core secret",
        );

        let Peeled::Intermediate { payload, inner } = peel(&keys[0], &onion).unwrap() else {
            panic!("expected intermediate");
        };
        assert_eq!(payload, b"to hop 1");

        let Peeled::Intermediate { payload, inner } = peel(&keys[1], &inner).unwrap() else {
            panic!("expected intermediate");
        };
        assert_eq!(payload, b"to hop 2");

        let (hop_payload, core) = peel_core(&keys[2], &inner).unwrap();
        assert_eq!(hop_payload, b"to hop 3");
        assert_eq!(core, b"core secret");
    }

    #[test]
    fn single_layer_onion() {
        let k = key(9);
        let onion = build_onion(&[(&k, b"only hop")], b"secret");
        match peel(&k, &onion).unwrap() {
            Peeled::Core { payload } => assert_eq!(payload, b"secret"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_key_cannot_peel() {
        let onion = build_onion(&[(&key(1), b""), (&key(2), b"")], b"secret");
        assert_eq!(
            peel(&key(2), &onion),
            Err(CryptoError::AuthenticationFailed),
            "inner key must not open the outer layer"
        );
        assert_eq!(
            peel(&key(7), &onion),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn skipping_a_layer_fails() {
        // An adversary holding K2 and K3 but not K1 cannot shortcut: the
        // outer layer hides the inner ciphertext entirely.
        let keys = [key(1), key(2), key(3)];
        let onion = build_onion(
            &[(&keys[0], b""), (&keys[1], b""), (&keys[2], b"")],
            b"secret",
        );
        assert!(peel(&keys[1], &onion).is_err());
        assert!(peel(&keys[2], &onion).is_err());
    }

    #[test]
    fn tampered_layer_rejected() {
        let k = key(4);
        let mut onion = build_onion(&[(&k, b"p")], b"secret");
        let mid = onion.len() / 2;
        onion[mid] ^= 0xFF;
        assert_eq!(peel(&k, &onion), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn peel_core_rejects_intermediate_layer() {
        let keys = [key(1), key(2)];
        let onion = build_onion(&[(&keys[0], b""), (&keys[1], b"")], b"secret");
        assert!(matches!(
            peel_core(&keys[0], &onion),
            Err(CryptoError::Malformed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one layer key")]
    fn empty_layers_panics() {
        let _ = build_onion(&[], b"secret");
    }

    #[test]
    fn onion_size_matches_reality() {
        let keys = [key(1), key(2), key(3)];
        let payloads: [&[u8]; 3] = [b"aa", b"bbbb", b"cccccc"];
        let onion = build_onion(
            &[
                (&keys[0], payloads[0]),
                (&keys[1], payloads[1]),
                (&keys[2], payloads[2]),
            ],
            b"0123456789",
        );
        assert_eq!(onion.len(), onion_size(&[2, 4, 6], 10));
    }

    #[test]
    fn in_place_build_and_peel_match_allocating_forms() {
        let keys = [key(1), key(2), key(3)];
        let layer_refs: [(&SymmetricKey, &[u8]); 3] = [
            (&keys[0], b"to hop 1"),
            (&keys[1], b"to hop 2"),
            (&keys[2], b"to hop 3"),
        ];
        let reference = build_onion(&layer_refs, b"core secret");
        let mut onion = Vec::new();
        let mut scratch = Vec::new();
        build_onion_into(&layer_refs, b"core secret", &mut onion, &mut scratch);
        assert_eq!(onion, reference);

        let mut payload = Vec::new();
        assert_eq!(
            peel_in_place(&keys[0], &mut onion, &mut payload).unwrap(),
            LayerKind::Intermediate
        );
        assert_eq!(payload, b"to hop 1");
        assert_eq!(
            peel_in_place(&keys[1], &mut onion, &mut payload).unwrap(),
            LayerKind::Intermediate
        );
        assert_eq!(payload, b"to hop 2");
        assert_eq!(
            peel_in_place(&keys[2], &mut onion, &mut payload).unwrap(),
            LayerKind::Core
        );
        assert_eq!(payload, b"to hop 3");
        assert_eq!(onion, b"core secret");

        // Wrong key leaves the onion untouched.
        let mut sealed = build_onion(&layer_refs, b"core secret");
        let before = sealed.clone();
        assert!(peel_in_place(&keys[1], &mut sealed, &mut payload).is_err());
        assert_eq!(sealed, before);
    }

    #[test]
    fn empty_payload_builder_matches_general_builder() {
        let keys = [key(1), key(2), key(3)];
        let reference = build_onion(
            &[(&keys[0], b""), (&keys[1], b""), (&keys[2], b"")],
            b"the core",
        );
        let mut onion = Vec::new();
        let mut scratch = Vec::new();
        build_onion_empty_into(&keys, b"the core", &mut onion, &mut scratch);
        assert_eq!(onion, reference);
        // Single-layer degenerate case too.
        let single_ref = build_onion(&[(&keys[0], b"")], b"x");
        build_onion_empty_into(&keys[..1], b"x", &mut onion, &mut scratch);
        assert_eq!(onion, single_ref);
    }

    #[test]
    fn replicated_onions_are_identical() {
        // The disjoint scheme sends the same onion down k paths; building it
        // twice must give byte-identical packages (deterministic nonces).
        let keys = [key(1), key(2)];
        let a = build_onion(&[(&keys[0], b"x"), (&keys[1], b"y")], b"core");
        let b = build_onion(&[(&keys[0], b"x"), (&keys[1], b"y")], b"core");
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn arbitrary_payload_roundtrip(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40), 1..5),
            core in proptest::collection::vec(any::<u8>(), 0..60),
        ) {
            let keys: Vec<SymmetricKey> =
                (0..payloads.len()).map(|i| key(i as u8 + 1)).collect();
            let layer_refs: Vec<(&SymmetricKey, &[u8])> = keys
                .iter()
                .zip(payloads.iter())
                .map(|(k, p)| (k, p.as_slice()))
                .collect();
            let mut onion = build_onion(&layer_refs, &core);

            for (i, k) in keys.iter().enumerate() {
                if i + 1 == keys.len() {
                    let (hp, c) = peel_core(k, &onion).unwrap();
                    prop_assert_eq!(&hp, &payloads[i]);
                    prop_assert_eq!(&c, &core);
                } else {
                    match peel(k, &onion).unwrap() {
                        Peeled::Intermediate { payload, inner } => {
                            prop_assert_eq!(&payload, &payloads[i]);
                            onion = inner;
                        }
                        Peeled::Core { .. } => prop_assert!(false, "core too early"),
                    }
                }
            }
        }
    }
}
