//! Layered ("onion") packaging for self-emerging key routing.
//!
//! Following Reed/Syverson/Goldschlag onion routing as used by the paper,
//! the sender wraps the secret in `l` encryption layers. The holder at hop
//! `j` peels exactly one layer with its column key `K_j`, revealing:
//!
//! * a per-hop **payload** (next-hop IDs, Shamir shares to forward, hold
//!   durations — whatever the scheme puts there), and
//! * the **inner onion** to forward to the next hop.
//!
//! The innermost layer carries the core payload (the protected secret key of
//! the self-emerging message). Layers are sealed with ChaCha20-Poly1305, so
//! a holder cannot see *or undetectably modify* anything beneath its own
//! layer.
//!
//! ```
//! use emerge_crypto::keys::SymmetricKey;
//! use emerge_crypto::onion::{build_onion, peel, Peeled};
//!
//! # fn main() -> Result<(), emerge_crypto::CryptoError> {
//! let k1 = SymmetricKey::from_bytes([1u8; 32]);
//! let k2 = SymmetricKey::from_bytes([2u8; 32]);
//! let onion = build_onion(&[(&k1, b"hop-1 data"), (&k2, b"hop-2 data")], b"the secret");
//!
//! let Peeled::Intermediate { payload, inner } = peel(&k1, &onion)? else { panic!() };
//! assert_eq!(payload, b"hop-1 data");
//! let Peeled::Core { payload } = peel(&k2, &inner)? else { panic!() };
//! assert_eq!(payload, b"the secret");
//! # Ok(())
//! # }
//! ```

use crate::aead;
use crate::error::CryptoError;
use crate::keys::SymmetricKey;
use crate::wire::{Reader, Writer};

/// Domain separation string authenticated with every onion layer.
const ONION_AAD: &[u8] = b"emerge-onion-v1";
/// Marks a layer that contains a further onion beneath it.
const TAG_INTERMEDIATE: u8 = 1;
/// Marks the innermost layer.
const TAG_CORE: u8 = 0;

/// The result of peeling one onion layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peeled {
    /// An intermediate layer: per-hop payload plus the onion to forward.
    Intermediate {
        /// Data addressed to this hop's holder.
        payload: Vec<u8>,
        /// The remaining onion, to forward to the next hop.
        inner: Vec<u8>,
    },
    /// The innermost layer: the protected core payload.
    Core {
        /// The core data (the self-emerging secret key).
        payload: Vec<u8>,
    },
}

/// Builds an onion with the given layers (outermost first) around `core`.
///
/// Layer `j` is decryptable with `layers[j].0`; peeling it yields
/// `layers[j].1` as the per-hop payload. Peeling the final layer yields
/// `core`.
///
/// An empty `layers` slice produces a single-layer onion — but that layer
/// still needs a key, so the degenerate "no hops at all" case is expressed
/// as `build_onion(&[(&key, b"")], core)` with one hop. This function
/// panics on a truly empty layer list because the result would be
/// unencrypted.
///
/// # Panics
///
/// Panics if `layers` is empty.
pub fn build_onion(layers: &[(&SymmetricKey, &[u8])], core: &[u8]) -> Vec<u8> {
    assert!(
        !layers.is_empty(),
        "an onion needs at least one layer key; refusing to emit plaintext"
    );

    // Innermost layer: the last key wraps the core together with the last
    // hop's payload.
    let (last_key, last_payload) = layers[layers.len() - 1];
    let mut w = Writer::new();
    w.put_u8(TAG_CORE).put_bytes(last_payload).put_bytes(core);
    let mut onion = seal_layer(last_key, &w.into_bytes());

    // Wrap outward.
    for &(key, payload) in layers[..layers.len() - 1].iter().rev() {
        let mut w = Writer::new();
        w.put_u8(TAG_INTERMEDIATE)
            .put_bytes(payload)
            .put_bytes(&onion);
        onion = seal_layer(key, &w.into_bytes());
    }
    onion
}

/// Peels one layer of `onion` with `key`.
///
/// # Errors
///
/// Returns [`CryptoError::AuthenticationFailed`] for a wrong key or a
/// tampered layer, and [`CryptoError::Malformed`] /
/// [`CryptoError::InvalidLength`] for structurally invalid plaintext.
pub fn peel(key: &SymmetricKey, onion: &[u8]) -> Result<Peeled, CryptoError> {
    let nonce = key.derive_nonce(b"onion-layer");
    let plain = aead::open(key, &nonce, onion, ONION_AAD)?;
    let mut r = Reader::new(&plain);
    let tag = r.get_u8()?;
    match tag {
        TAG_CORE => {
            // Core layers also carry a final-hop payload; the caller that
            // wants just the core reads `payload` of Peeled::Core after the
            // hop payload. Layout: tag, hop payload, core payload.
            let _hop_payload = r.get_bytes()?.to_vec();
            let core = r.get_bytes()?.to_vec();
            r.expect_end()?;
            Ok(Peeled::Core { payload: core })
        }
        TAG_INTERMEDIATE => {
            let payload = r.get_bytes()?.to_vec();
            let inner = r.get_bytes()?.to_vec();
            r.expect_end()?;
            Ok(Peeled::Intermediate { payload, inner })
        }
        _ => Err(CryptoError::Malformed("unknown onion layer tag")),
    }
}

/// Peels the innermost layer, returning both the final hop payload and the
/// core. Use this when the terminal holder needs its hop payload too.
pub fn peel_core(key: &SymmetricKey, onion: &[u8]) -> Result<(Vec<u8>, Vec<u8>), CryptoError> {
    let nonce = key.derive_nonce(b"onion-layer");
    let plain = aead::open(key, &nonce, onion, ONION_AAD)?;
    let mut r = Reader::new(&plain);
    let tag = r.get_u8()?;
    if tag != TAG_CORE {
        return Err(CryptoError::Malformed(
            "expected core onion layer, found intermediate",
        ));
    }
    let hop_payload = r.get_bytes()?.to_vec();
    let core = r.get_bytes()?.to_vec();
    r.expect_end()?;
    Ok((hop_payload, core))
}

fn seal_layer(key: &SymmetricKey, plaintext: &[u8]) -> Vec<u8> {
    let nonce = key.derive_nonce(b"onion-layer");
    aead::seal(key, &nonce, plaintext, ONION_AAD)
}

/// Computes the serialized size of an onion with the given per-layer
/// payload sizes (outermost first) and core size, without building it.
///
/// Useful for capacity planning in the schemes and asserted against real
/// onions in tests.
pub fn onion_size(payload_sizes: &[usize], core_size: usize) -> usize {
    assert!(!payload_sizes.is_empty());
    // Innermost: tag(1) + len(4) + payload + len(4) + core, plus AEAD tag.
    let last = payload_sizes[payload_sizes.len() - 1];
    let mut size = 1 + 4 + last + 4 + core_size + aead::OVERHEAD;
    for &p in payload_sizes[..payload_sizes.len() - 1].iter().rev() {
        size = 1 + 4 + p + 4 + size + aead::OVERHEAD;
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(b: u8) -> SymmetricKey {
        SymmetricKey::from_bytes([b; 32])
    }

    #[test]
    fn three_layer_roundtrip() {
        let keys = [key(1), key(2), key(3)];
        let onion = build_onion(
            &[
                (&keys[0], b"to hop 1"),
                (&keys[1], b"to hop 2"),
                (&keys[2], b"to hop 3"),
            ],
            b"core secret",
        );

        let Peeled::Intermediate { payload, inner } = peel(&keys[0], &onion).unwrap() else {
            panic!("expected intermediate");
        };
        assert_eq!(payload, b"to hop 1");

        let Peeled::Intermediate { payload, inner } = peel(&keys[1], &inner).unwrap() else {
            panic!("expected intermediate");
        };
        assert_eq!(payload, b"to hop 2");

        let (hop_payload, core) = peel_core(&keys[2], &inner).unwrap();
        assert_eq!(hop_payload, b"to hop 3");
        assert_eq!(core, b"core secret");
    }

    #[test]
    fn single_layer_onion() {
        let k = key(9);
        let onion = build_onion(&[(&k, b"only hop")], b"secret");
        match peel(&k, &onion).unwrap() {
            Peeled::Core { payload } => assert_eq!(payload, b"secret"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_key_cannot_peel() {
        let onion = build_onion(&[(&key(1), b""), (&key(2), b"")], b"secret");
        assert_eq!(
            peel(&key(2), &onion),
            Err(CryptoError::AuthenticationFailed),
            "inner key must not open the outer layer"
        );
        assert_eq!(
            peel(&key(7), &onion),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn skipping_a_layer_fails() {
        // An adversary holding K2 and K3 but not K1 cannot shortcut: the
        // outer layer hides the inner ciphertext entirely.
        let keys = [key(1), key(2), key(3)];
        let onion = build_onion(
            &[(&keys[0], b""), (&keys[1], b""), (&keys[2], b"")],
            b"secret",
        );
        assert!(peel(&keys[1], &onion).is_err());
        assert!(peel(&keys[2], &onion).is_err());
    }

    #[test]
    fn tampered_layer_rejected() {
        let k = key(4);
        let mut onion = build_onion(&[(&k, b"p")], b"secret");
        let mid = onion.len() / 2;
        onion[mid] ^= 0xFF;
        assert_eq!(peel(&k, &onion), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn peel_core_rejects_intermediate_layer() {
        let keys = [key(1), key(2)];
        let onion = build_onion(&[(&keys[0], b""), (&keys[1], b"")], b"secret");
        assert!(matches!(
            peel_core(&keys[0], &onion),
            Err(CryptoError::Malformed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one layer key")]
    fn empty_layers_panics() {
        let _ = build_onion(&[], b"secret");
    }

    #[test]
    fn onion_size_matches_reality() {
        let keys = [key(1), key(2), key(3)];
        let payloads: [&[u8]; 3] = [b"aa", b"bbbb", b"cccccc"];
        let onion = build_onion(
            &[
                (&keys[0], payloads[0]),
                (&keys[1], payloads[1]),
                (&keys[2], payloads[2]),
            ],
            b"0123456789",
        );
        assert_eq!(onion.len(), onion_size(&[2, 4, 6], 10));
    }

    #[test]
    fn replicated_onions_are_identical() {
        // The disjoint scheme sends the same onion down k paths; building it
        // twice must give byte-identical packages (deterministic nonces).
        let keys = [key(1), key(2)];
        let a = build_onion(&[(&keys[0], b"x"), (&keys[1], b"y")], b"core");
        let b = build_onion(&[(&keys[0], b"x"), (&keys[1], b"y")], b"core");
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn arbitrary_payload_roundtrip(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40), 1..5),
            core in proptest::collection::vec(any::<u8>(), 0..60),
        ) {
            let keys: Vec<SymmetricKey> =
                (0..payloads.len()).map(|i| key(i as u8 + 1)).collect();
            let layer_refs: Vec<(&SymmetricKey, &[u8])> = keys
                .iter()
                .zip(payloads.iter())
                .map(|(k, p)| (k, p.as_slice()))
                .collect();
            let mut onion = build_onion(&layer_refs, &core);

            for (i, k) in keys.iter().enumerate() {
                if i + 1 == keys.len() {
                    let (hp, c) = peel_core(k, &onion).unwrap();
                    prop_assert_eq!(&hp, &payloads[i]);
                    prop_assert_eq!(&c, &core);
                } else {
                    match peel(k, &onion).unwrap() {
                        Peeled::Intermediate { payload, inner } => {
                            prop_assert_eq!(&payload, &payloads[i]);
                            onion = inner;
                        }
                        Peeled::Core { .. } => prop_assert!(false, "core too early"),
                    }
                }
            }
        }
    }
}
