//! SHA-256 as specified in FIPS 180-4.
//!
//! A straightforward, allocation-free implementation supporting streaming
//! updates. Verified against the NIST short-message test vectors in the unit
//! tests below.
//!
//! ```
//! use emerge_crypto::sha256::Sha256;
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! fn hex(bytes: &[u8]) -> String {
//!     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! }
//! ```

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// Use [`Sha256::digest`] for one-shot hashing, or `new`/`update`/`finalize`
/// for streaming input.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the 32-byte digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffered > 0 {
            let want = BLOCK_LEN - self.buffered;
            let take = want.min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }

        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut tmp = [0u8; BLOCK_LEN];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            input = rest;
        }

        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but does not count the bytes toward the message length
    /// (used internally for padding only).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    #[allow(unsafe_code)] // feature-checked dispatch into the SHA-NI kernel
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available()` verified the sha/ssse3/sse4.1 features
            // the accelerated path compiles against.
            unsafe { shani::compress(&mut self.state, block) };
            return;
        }
        Self::compress_scalar(&mut self.state, block);
    }

    /// The portable FIPS 180-4 compression function — the fallback on
    /// CPUs without the SHA extensions and the bit-identity oracle for
    /// the accelerated path.
    fn compress_scalar(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// SHA-256 compression on the x86 SHA extensions (`sha256rnds2` /
/// `sha256msg1` / `sha256msg2`), following Intel's published schedule.
///
/// Every HKDF derivation in the workspace funnels through
/// [`Sha256::compress`], so this one function accelerates the key
/// schedule, nonce derivation and holder-address derivation together.
/// The scalar path stays as the oracle (`shani_matches_scalar_compress`)
/// and as the fallback on the portable CI target.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // hardware intrinsics; bit-identity pinned by test
mod shani {
    use super::{BLOCK_LEN, K};
    use std::arch::x86_64::*;

    /// Whether the running CPU has the SHA extensions plus the SSSE3 /
    /// SSE4.1 shuffles the state permutation uses.
    /// `is_x86_feature_detected!` caches each answer, so the steady-state
    /// cost is one relaxed atomic load per feature.
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1")
    }

    /// One compression round over `block`.
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] on this CPU.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // SAFETY: caller upholds the `available()` contract (SHA-NI + SSSE3 +
        // SSE4.1 confirmed by cpuid), so every intrinsic here is supported. Memory
        // access is unaligned `loadu`/`storeu` over `state` (8 u32s = two 128-bit
        // vectors) and 16-byte word loads within the 64-byte `block` array — all
        // bounds are fixed by the array types.
        unsafe {
            // Big-endian word loads: lane `i` becomes be32(block[4i..4i+4]).
            let be_mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

            // Repack {a..d}{e..h} into the ABEF/CDGH lane order the
            // instructions operate on.
            let tmp = _mm_loadu_si128(state.as_ptr().cast()); // a b c d
            let st1 = _mm_loadu_si128(state.as_ptr().add(4).cast()); // e f g h
            let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
            let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
            let mut state0 = _mm_alignr_epi8(tmp, st1, 8); // ABEF
            let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

            let abef_save = state0;
            let cdgh_save = state1;

            // Sixteen groups of four rounds. Groups 0-3 load message words;
            // groups 1-12 run msg1 and groups 3-14 run the alignr + msg2 step
            // of the on-the-fly message schedule (Intel's reference ordering).
            let mut w = [_mm_setzero_si128(); 4];
            for g in 0..16 {
                if g < 4 {
                    let raw = _mm_loadu_si128(block.as_ptr().add(16 * g).cast());
                    w[g] = _mm_shuffle_epi8(raw, be_mask);
                }
                let mut msg =
                    _mm_add_epi32(w[g % 4], _mm_loadu_si128(K.as_ptr().add(4 * g).cast()));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                if (3..=14).contains(&g) {
                    let tmp = _mm_alignr_epi8(w[g % 4], w[(g + 3) % 4], 4);
                    w[(g + 1) % 4] = _mm_add_epi32(w[(g + 1) % 4], tmp);
                    w[(g + 1) % 4] = _mm_sha256msg2_epu32(w[(g + 1) % 4], w[g % 4]);
                }
                msg = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                if (1..=12).contains(&g) {
                    w[(g + 3) % 4] = _mm_sha256msg1_epu32(w[(g + 3) % 4], w[g % 4]);
                }
            }

            state0 = _mm_add_epi32(state0, abef_save);
            state1 = _mm_add_epi32(state1, cdgh_save);

            // Permute ABEF/CDGH back to {a..d}{e..h}.
            let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
            let state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
            let out0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
            let out1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
            _mm_storeu_si128(state.as_mut_ptr().cast(), out0);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), out1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bits() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(7000).collect();
        let oneshot = Sha256::digest(&data);
        // Split at awkward boundaries relative to the 64-byte block size.
        for split in [1usize, 63, 64, 65, 127, 1000, 6999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256::digest(b"a"), Sha256::digest(b"b"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\x00"));
    }

    #[test]
    fn clone_preserves_state() {
        let mut h1 = Sha256::new();
        h1.update(b"partial ");
        let mut h2 = h1.clone();
        h1.update(b"input");
        h2.update(b"input");
        assert_eq!(h1.finalize(), h2.finalize());
    }

    /// The SHA-NI compression is bit-identical to the scalar oracle on
    /// random states and blocks (vacuous on CPUs without the extension —
    /// there the dispatcher runs the scalar path everywhere anyway).
    #[test]
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // feature-checked call into the SHA-NI kernel
    fn shani_matches_scalar_compress() {
        use super::shani;
        if !shani::available() {
            return;
        }
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5A25_6E15);
        for _ in 0..500 {
            let mut state = [0u32; 8];
            for word in &mut state {
                *word = rng.next_u32();
            }
            let mut block = [0u8; BLOCK_LEN];
            rng.fill_bytes(&mut block);

            let mut accel = state;
            // SAFETY: `available()` confirmed the required CPU features.
            unsafe { shani::compress(&mut accel, &block) };
            let mut scalar = state;
            Sha256::compress_scalar(&mut scalar, &block);
            assert_eq!(accel, scalar);
        }
    }
}
