//! Arithmetic in GF(2^8) with the AES reduction polynomial
//! `x^8 + x^4 + x^3 + x + 1` (0x11b).
//!
//! This field underlies the Shamir secret sharing in [`crate::shamir`].
//! Scalar multiplication uses log/antilog tables over the generator 3,
//! built once at first use; the slice kernels
//! ([`mul_slice_assign`], [`mul_acc_slice`]) instead use a branchless
//! xtime ladder with no data-dependent loads, which LLVM auto-vectorizes
//! to full SIMD width (identical results — the property suite compares
//! every kernel against scalar [`mul`]).

use std::sync::OnceLock;

/// Multiplication lookup tables: `exp[i] = g^i`, `log[x] = i` with `g = 3`.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply x by the generator 3 = x + 1: x*3 = x*2 ^ x.
            let x2 = x << 1;
            let x2 = if x2 & 0x100 != 0 { x2 ^ 0x11b } else { x2 };
            x = (x2 ^ x) & 0xff;
        }
        // Duplicate so that exp[a + b] needs no modular reduction for
        // a, b <= 254.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Full 256x256 product table: `MUL[a][b] = mul(a, b)`. 64 KiB, built once
/// at first use. A per-scalar row turns slice multiplication into a single
/// indexed load per byte — no zero branch, no log/antilog double lookup —
/// which is what makes the Shamir slab kernels fast.
fn mul_table() -> &'static [[u8; 256]; 256] {
    static MUL: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    MUL.get_or_init(|| {
        let mut table = Box::new([[0u8; 256]; 256]);
        for a in 0..256 {
            for b in 0..256 {
                table[a][b] = mul(a as u8, b as u8);
            }
        }
        table
    })
}

/// The 256-entry multiplication row of `scalar`: `row[b] = mul(scalar, b)`.
#[inline]
pub fn mul_row(scalar: u8) -> &'static [u8; 256] {
    &mul_table()[scalar as usize]
}

/// Lane width of the branchless slice kernels. 64 bytes fills one AVX-512
/// register or two AVX2 registers per operation.
const GF_CHUNK: usize = 64;

/// Computes `scalar * cur[i]` for a whole chunk with the branchless
/// xtime ladder, XOR-accumulating into `acc`.
///
/// Eight fixed iterations of mask-select and conditional-reduce, all
/// expressible as byte-wise AND/XOR/shift — the shape LLVM auto-vectorizes
/// into full-width SIMD. Unlike the table row walk this issues **no
/// data-dependent loads**, which both avoids the vectorizer's slow-gather
/// lowering on wide targets and runs at a few tenths of a cycle per byte.
/// The arithmetic is the textbook GF(2^8) double-and-add, so results are
/// bit-identical to the table path (the property suite compares them).
#[inline(always)]
fn mul_acc_chunk(acc: &mut [u8; GF_CHUNK], cur: &mut [u8; GF_CHUNK], scalar: u8) {
    let mut s = scalar;
    loop {
        let select = (s & 1).wrapping_neg(); // 0xFF where this bit of scalar is set
        for (a, c) in acc.iter_mut().zip(cur.iter()) {
            *a ^= c & select;
        }
        s >>= 1;
        if s == 0 {
            break;
        }
        // cur *= x, reduced by 0x11b when the high bit falls off.
        for c in cur.iter_mut() {
            let hi = (*c >> 7).wrapping_neg(); // 0xFF where reduction is needed
            *c = (*c << 1) ^ (hi & 0x1b);
        }
    }
}

/// Multiplies every byte of `dst` by `scalar` in place.
///
/// Slice form of [`mul`]: `dst[i] = mul(dst[i], scalar)` for all `i`, via
/// the GFNI `gf2p8mul` instruction where the CPU has it (this field uses
/// the AES polynomial `0x11b` — exactly the reduction GFNI implements in
/// hardware) and the vector-friendly branchless xtime ladder otherwise
/// (see `mul_acc_chunk`).
pub fn mul_slice_assign(dst: &mut [u8], scalar: u8) {
    match scalar {
        0 => dst.fill(0),
        1 => {}
        _ => {
            #[cfg(target_arch = "x86_64")]
            if gfni::available() {
                // SAFETY: `available()` just confirmed via cpuid the GFNI and
                // AVX-512 F/BW features the kernel's `#[target_feature]`
                // requires; slices pass through unchanged, so the kernel's
                // bounds contract is the safe signature's own.
                #[allow(unsafe_code)]
                unsafe {
                    gfni::mul_slice_assign(dst, scalar);
                };
                return;
            }
            mul_slice_assign_ladder(dst, scalar);
        }
    }
}

/// Portable chunk-ladder body of [`mul_slice_assign`] — the fallback on
/// CPUs without GFNI and the bit-identity oracle for the GFNI path.
fn mul_slice_assign_ladder(dst: &mut [u8], scalar: u8) {
    for chunk in dst.chunks_mut(GF_CHUNK) {
        let n = chunk.len();
        let mut cur = [0u8; GF_CHUNK];
        cur[..n].copy_from_slice(chunk);
        let mut acc = [0u8; GF_CHUNK];
        mul_acc_chunk(&mut acc, &mut cur, scalar);
        chunk.copy_from_slice(&acc[..n]);
    }
}

/// Accumulates `scalar * src` into `dst`: `dst[i] ^= mul(src[i], scalar)`.
///
/// This is the Lagrange slice-accumulate at the heart of batched
/// [`crate::shamir::combine`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], scalar: u8) {
    // LINT-WAIVER(panic): documented # Panics contract: slice lengths must match
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_acc_slice requires equal-length slices"
    );
    match scalar {
        0 => {}
        1 => add_slice_assign(dst, src),
        _ => {
            #[cfg(target_arch = "x86_64")]
            if gfni::available() {
                // SAFETY: `available()` just confirmed via cpuid the GFNI and
                // AVX-512 F/BW features the kernel's `#[target_feature]`
                // requires; slices pass through unchanged, so the kernel's
                // bounds contract is the safe signature's own.
                #[allow(unsafe_code)]
                unsafe {
                    gfni::mul_acc_slice(dst, src, scalar);
                };
                return;
            }
            mul_acc_slice_ladder(dst, src, scalar);
        }
    }
}

/// Portable chunk-ladder body of [`mul_acc_slice`] — the fallback on CPUs
/// without GFNI and the bit-identity oracle for the GFNI path.
fn mul_acc_slice_ladder(dst: &mut [u8], src: &[u8], scalar: u8) {
    for (dchunk, schunk) in dst.chunks_mut(GF_CHUNK).zip(src.chunks(GF_CHUNK)) {
        let n = dchunk.len();
        let mut cur = [0u8; GF_CHUNK];
        cur[..n].copy_from_slice(schunk);
        let mut acc = [0u8; GF_CHUNK];
        mul_acc_chunk(&mut acc, &mut cur, scalar);
        for (d, a) in dchunk.iter_mut().zip(acc.iter()) {
            *d ^= a;
        }
    }
}

/// Fused Horner step: `acc[i] = row[i] ^ mul(acc[i], scalar)` for all
/// `i`, in one chunk pass.
///
/// The Shamir share evaluation's inner loop is exactly this recurrence;
/// fusing it halves the memory passes of a separate multiply-then-add
/// (the accumulator is read, laddered, combined with the row, and
/// written once). Field math identical to
/// `mul_slice_assign` + `add_slice_assign` (the property suite pins it).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn horner_step_slice(acc: &mut [u8], row: &[u8], scalar: u8) {
    // LINT-WAIVER(panic): documented # Panics contract: slice lengths must match
    assert_eq!(
        acc.len(),
        row.len(),
        "horner_step_slice requires equal-length slices"
    );
    match scalar {
        0 => acc.copy_from_slice(row),
        1 => add_slice_assign(acc, row),
        _ => {
            #[cfg(target_arch = "x86_64")]
            if gfni::available() {
                // SAFETY: `available()` just confirmed via cpuid the GFNI and
                // AVX-512 F/BW features the kernel's `#[target_feature]`
                // requires; slices pass through unchanged, so the kernel's
                // bounds contract is the safe signature's own.
                #[allow(unsafe_code)]
                unsafe {
                    gfni::horner_step_slice(acc, row, scalar);
                };
                return;
            }
            horner_step_slice_ladder(acc, row, scalar);
        }
    }
}

/// Portable chunk-ladder body of [`horner_step_slice`] — the fallback on
/// CPUs without GFNI and the bit-identity oracle for the GFNI path.
fn horner_step_slice_ladder(acc: &mut [u8], row: &[u8], scalar: u8) {
    for (achunk, rchunk) in acc.chunks_mut(GF_CHUNK).zip(row.chunks(GF_CHUNK)) {
        let n = achunk.len();
        let mut cur = [0u8; GF_CHUNK];
        cur[..n].copy_from_slice(achunk);
        let mut out = [0u8; GF_CHUNK];
        out[..n].copy_from_slice(rchunk);
        mul_acc_chunk(&mut out, &mut cur, scalar);
        achunk.copy_from_slice(&out[..n]);
    }
}

/// XORs `src` into `dst` (slice form of [`add`]).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_slice_assign(dst: &mut [u8], src: &[u8]) {
    // LINT-WAIVER(panic): documented # Panics contract: slice lengths must match
    assert_eq!(
        dst.len(),
        src.len(),
        "add_slice_assign requires equal-length slices"
    );
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Lagrange basis coefficients at x = 0 for the evaluation points `xs`:
/// `weights[i] = L_i(0) = prod_{j != i} x_j / (x_j - x_i)`.
///
/// Computing the weights **once per share set** (instead of once per byte,
/// as the naive [`interpolate_at_zero`] loop does) turns interpolation of
/// an s-byte secret from `O(s * m^2)` field ops into `O(m^2 + s * m)`.
/// The per-weight arithmetic is identical to the scalar path, so results
/// are bit-for-bit the same.
///
/// # Panics
///
/// Panics if any `x_i` is repeated (division by zero).
pub fn lagrange_weights_at_zero(xs: &[u8]) -> Vec<u8> {
    let mut weights = Vec::with_capacity(xs.len());
    lagrange_weights_at_zero_into(xs, &mut weights);
    weights
}

/// [`lagrange_weights_at_zero`] into a caller-held buffer (cleared first)
/// — the reconstruction hot loop's form, which reuses one weights vector
/// across every share set of a run.
///
/// # Panics
///
/// Panics if any `x_i` is repeated (division by zero).
pub fn lagrange_weights_at_zero_into(xs: &[u8], weights: &mut Vec<u8>) {
    weights.clear();
    weights.reserve(xs.len());
    for (i, &xi) in xs.iter().enumerate() {
        let mut num = 1u8;
        let mut den = 1u8;
        for (j, &xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            num = mul(num, xj);
            den = mul(den, sub(xj, xi));
        }
        weights.push(div(num, den));
    }
}

/// The GF(2^8) slice kernels on the x86 GFNI extension.
///
/// `gf2p8mul` multiplies bytes in GF(2^8) reduced by the AES polynomial
/// `x^8 + x^4 + x^3 + x + 1` (0x11b) — precisely this module's field — so
/// one 512-bit instruction replaces the eight-iteration xtime ladder over
/// a 64-byte chunk. Tails shorter than a vector use AVX-512BW byte masks,
/// keeping every load and store in bounds. The ladder kernels stay as the
/// portable fallback and the bit-identity oracles
/// (`gfni_matches_ladder_kernels`).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // hardware intrinsics; bit-identity pinned by test
mod gfni {
    use std::arch::x86_64::*;

    /// Whether the running CPU has GFNI plus the AVX-512 F/BW width and
    /// byte-masking this path compiles against. Each
    /// `is_x86_feature_detected!` answer is cached by std.
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("gfni")
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
    }

    /// `dst[i] = dst[i] * scalar` over the field.
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] on this CPU.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    pub unsafe fn mul_slice_assign(dst: &mut [u8], scalar: u8) {
        // SAFETY: caller upholds the `available()` contract (GFNI + AVX-512 F/BW
        // confirmed by cpuid), so every intrinsic here is supported. All loads and
        // stores are the explicitly unaligned `loadu`/`storeu` forms (no alignment
        // precondition), and the 64-lane pointer arithmetic stays in bounds: full
        // vectors only while `i + 64 <= dst.len()`, and the tail uses a
        // `(1 << rem) - 1` byte mask so masked lanes never touch memory.
        unsafe {
            let vs = _mm512_set1_epi8(scalar as i8);
            let mut i = 0;
            while i + 64 <= dst.len() {
                let p = dst.as_mut_ptr().add(i);
                let v = _mm512_loadu_epi8(p.cast());
                _mm512_storeu_epi8(p.cast(), _mm512_gf2p8mul_epi8(v, vs));
                i += 64;
            }
            let rem = dst.len() - i;
            if rem > 0 {
                let mask: __mmask64 = (1u64 << rem) - 1;
                let p = dst.as_mut_ptr().add(i);
                let v = _mm512_maskz_loadu_epi8(mask, p.cast());
                _mm512_mask_storeu_epi8(p.cast(), mask, _mm512_gf2p8mul_epi8(v, vs));
            }
        }
    }

    /// `dst[i] ^= src[i] * scalar` over the field. Lengths must match
    /// (checked by the safe dispatcher).
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] on this CPU.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    pub unsafe fn mul_acc_slice(dst: &mut [u8], src: &[u8], scalar: u8) {
        // SAFETY: caller upholds the `available()` contract (GFNI + AVX-512 F/BW
        // confirmed by cpuid) and the safe dispatcher checked `dst.len() == src.len()`.
        // Unaligned `loadu`/`storeu` forms throughout; 64-lane full vectors only
        // while `i + 64 <= dst.len()`, and the tail's `(1 << rem) - 1` mask keeps
        // every masked lane from touching memory past either slice.
        unsafe {
            debug_assert_eq!(dst.len(), src.len());
            let vs = _mm512_set1_epi8(scalar as i8);
            let mut i = 0;
            while i + 64 <= dst.len() {
                let d = dst.as_mut_ptr().add(i);
                let s = src.as_ptr().add(i);
                let prod = _mm512_gf2p8mul_epi8(_mm512_loadu_epi8(s.cast()), vs);
                _mm512_storeu_epi8(
                    d.cast(),
                    _mm512_xor_si512(_mm512_loadu_epi8(d.cast()), prod),
                );
                i += 64;
            }
            let rem = dst.len() - i;
            if rem > 0 {
                let mask: __mmask64 = (1u64 << rem) - 1;
                let d = dst.as_mut_ptr().add(i);
                let s = src.as_ptr().add(i);
                let prod = _mm512_gf2p8mul_epi8(_mm512_maskz_loadu_epi8(mask, s.cast()), vs);
                let acc = _mm512_xor_si512(_mm512_maskz_loadu_epi8(mask, d.cast()), prod);
                _mm512_mask_storeu_epi8(d.cast(), mask, acc);
            }
        }
    }

    /// `acc[i] = row[i] ^ acc[i] * scalar` over the field (the fused
    /// Horner step). Lengths must match (checked by the safe dispatcher).
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] on this CPU.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    pub unsafe fn horner_step_slice(acc: &mut [u8], row: &[u8], scalar: u8) {
        // SAFETY: caller upholds the `available()` contract (GFNI + AVX-512 F/BW
        // confirmed by cpuid) and the safe dispatcher checked `acc.len() == row.len()`.
        // Unaligned `loadu`/`storeu` forms throughout; 64-lane full vectors only
        // while `i + 64 <= acc.len()`, and the tail's `(1 << rem) - 1` mask keeps
        // every masked lane from touching memory past either slice.
        unsafe {
            debug_assert_eq!(acc.len(), row.len());
            let vs = _mm512_set1_epi8(scalar as i8);
            let mut i = 0;
            while i + 64 <= acc.len() {
                let a = acc.as_mut_ptr().add(i);
                let r = row.as_ptr().add(i);
                let prod = _mm512_gf2p8mul_epi8(_mm512_loadu_epi8(a.cast()), vs);
                _mm512_storeu_epi8(
                    a.cast(),
                    _mm512_xor_si512(_mm512_loadu_epi8(r.cast()), prod),
                );
                i += 64;
            }
            let rem = acc.len() - i;
            if rem > 0 {
                let mask: __mmask64 = (1u64 << rem) - 1;
                let a = acc.as_mut_ptr().add(i);
                let r = row.as_ptr().add(i);
                let prod = _mm512_gf2p8mul_epi8(_mm512_maskz_loadu_epi8(mask, a.cast()), vs);
                let out = _mm512_xor_si512(_mm512_maskz_loadu_epi8(mask, r.cast()), prod);
                _mm512_mask_storeu_epi8(a.cast(), mask, out);
            }
        }
    }
}

/// Adds two field elements (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts two field elements (identical to addition in GF(2^8)).
#[inline]
pub fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Computes the multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a == 0`; zero has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    // LINT-WAIVER(panic): documented # Panics contract: zero has no inverse in the field
    assert!(a != 0, "zero has no multiplicative inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    // LINT-WAIVER(panic): documented # Panics contract: division by zero is a caller bug
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let diff = 255 + t.log[a as usize] as usize - t.log[b as usize] as usize;
    t.exp[diff]
}

/// Evaluates the polynomial with coefficients `coeffs` (constant term first)
/// at point `x`, via Horner's rule.
pub fn poly_eval(coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

/// Lagrange interpolation at x = 0 given distinct points `(x_i, y_i)`.
///
/// Returns the constant term of the unique degree < points.len() polynomial
/// through the points — i.e. the Shamir secret byte.
///
/// # Panics
///
/// Panics if any `x_i` is repeated (division by zero) or any `x_i == 0` is
/// combined with another point at the same x.
pub fn interpolate_at_zero(points: &[(u8, u8)]) -> u8 {
    let mut acc = 0u8;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Lagrange basis L_i(0) = prod_{j != i} x_j / (x_j - x_i).
        let mut num = 1u8;
        let mut den = 1u8;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            num = mul(num, xj);
            den = mul(den, sub(xj, xi));
        }
        acc = add(acc, mul(yi, div(num, den)));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_known_values() {
        // Classic AES examples.
        assert_eq!(mul(0x57, 0x83), 0xc1);
        assert_eq!(mul(0x57, 0x13), 0xfe);
        assert_eq!(mul(2, 0x80), 0x1b);
        assert_eq!(mul(1, 0xff), 0xff);
        assert_eq!(mul(0, 0xff), 0);
    }

    #[test]
    fn inv_round_trips() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    fn poly_eval_constant_and_linear() {
        assert_eq!(poly_eval(&[0x42], 0x99), 0x42);
        // p(x) = 5 + 3x at x=2: 5 ^ mul(3,2) = 5 ^ 6 = 3.
        assert_eq!(poly_eval(&[5, 3], 2), 3);
        // At x = 0 only the constant term remains.
        assert_eq!(poly_eval(&[7, 11, 13], 0), 7);
    }

    #[test]
    fn interpolation_recovers_constant_term() {
        // p(x) = 0x2a + 0x0fx + 0x80x^2
        let coeffs = [0x2a, 0x0f, 0x80];
        let points: Vec<(u8, u8)> = [1u8, 2, 3]
            .iter()
            .map(|&x| (x, poly_eval(&coeffs, x)))
            .collect();
        assert_eq!(interpolate_at_zero(&points), 0x2a);
    }

    proptest! {
        #[test]
        fn mul_commutative(a: u8, b: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
        }

        #[test]
        fn mul_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn distributive(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn one_is_identity(a: u8) {
            prop_assert_eq!(mul(a, 1), a);
        }

        #[test]
        fn add_self_is_zero(a: u8) {
            prop_assert_eq!(add(a, a), 0);
        }

        #[test]
        fn div_inverts_mul(a: u8, b in 1u8..) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        #[test]
        fn mul_slice_assign_matches_scalar_mul(
            data in proptest::collection::vec(any::<u8>(), 0..80),
            scalar: u8,
        ) {
            let expected: Vec<u8> = data.iter().map(|&b| mul(b, scalar)).collect();
            let mut got = data;
            mul_slice_assign(&mut got, scalar);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn horner_step_matches_separate_mul_then_add(
            acc in proptest::collection::vec(any::<u8>(), 0..200),
            scalar: u8,
            row_seed: u8,
        ) {
            let row: Vec<u8> = (0..acc.len())
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(row_seed))
                .collect();
            let mut expected = acc.clone();
            mul_slice_assign(&mut expected, scalar);
            add_slice_assign(&mut expected, &row);
            let mut got = acc;
            horner_step_slice(&mut got, &row, scalar);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn mul_acc_slice_matches_scalar_loop(
            dst_full: [u8; 64],
            src_full: [u8; 64],
            len in 0usize..=64,
            scalar: u8,
        ) {
            let (dst, src) = (&dst_full[..len], &src_full[..len]);
            let expected: Vec<u8> = dst
                .iter()
                .zip(src)
                .map(|(&d, &s)| add(d, mul(s, scalar)))
                .collect();
            let mut got = dst.to_vec();
            mul_acc_slice(&mut got, src, scalar);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn add_slice_assign_is_xor(
            dst_full: [u8; 64],
            src_full: [u8; 64],
            len in 0usize..=64,
        ) {
            let (dst, src) = (&dst_full[..len], &src_full[..len]);
            let expected: Vec<u8> =
                dst.iter().zip(src).map(|(&d, &s)| d ^ s).collect();
            let mut got = dst.to_vec();
            add_slice_assign(&mut got, src);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn mul_row_is_the_mul_table_row(scalar: u8) {
            let row = mul_row(scalar);
            for b in 0..=255u8 {
                prop_assert_eq!(row[b as usize], mul(scalar, b));
            }
        }

        #[test]
        fn weights_reproduce_interpolation(
            coeffs in proptest::collection::vec(any::<u8>(), 1..6),
            ys in proptest::collection::vec(any::<u8>(), 0..10),
        ) {
            // Interpolating with precomputed weights must equal the
            // per-byte scalar interpolation for every secret byte.
            let m = coeffs.len();
            let xs: Vec<u8> = (1..=m as u8).collect();
            let weights = lagrange_weights_at_zero(&xs);
            for &extra in &ys {
                let mut c = coeffs.clone();
                c[0] = extra; // vary the constant term
                let points: Vec<(u8, u8)> =
                    xs.iter().map(|&x| (x, poly_eval(&c, x))).collect();
                let scalar = interpolate_at_zero(&points);
                let batched = points
                    .iter()
                    .zip(&weights)
                    .fold(0u8, |acc, (&(_, y), &w)| add(acc, mul(y, w)));
                prop_assert_eq!(batched, scalar);
            }
        }

        /// The ladder bodies match the public dispatchers (which pick the
        /// GFNI kernels where the CPU has them) across chunk-spanning
        /// lengths and ragged tails — this is the test that keeps both
        /// the hardware path and the portable oracle honest on one host.
        #[test]
        fn gfni_matches_ladder_kernels(
            data in proptest::collection::vec(any::<u8>(), 0..200),
            other_seed: u8,
            scalar in 2u8.., // 0/1 short-circuit before either kernel
        ) {
            let other: Vec<u8> = (0..data.len())
                .map(|i| (i as u8).wrapping_mul(97).wrapping_add(other_seed))
                .collect();

            let mut a = data.clone();
            mul_slice_assign(&mut a, scalar);
            let mut b = data.clone();
            mul_slice_assign_ladder(&mut b, scalar);
            prop_assert_eq!(&a, &b);

            let mut a = data.clone();
            mul_acc_slice(&mut a, &other, scalar);
            let mut b = data.clone();
            mul_acc_slice_ladder(&mut b, &other, scalar);
            prop_assert_eq!(&a, &b);

            let mut a = data.clone();
            horner_step_slice(&mut a, &other, scalar);
            let mut b = data;
            horner_step_slice_ladder(&mut b, &other, scalar);
            prop_assert_eq!(&a, &b);
        }

        #[test]
        fn interpolation_from_any_three_of_five(seed in any::<[u8; 3]>()) {
            let coeffs = [seed[0], seed[1], seed[2]];
            let all: Vec<(u8, u8)> = (1u8..=5).map(|x| (x, poly_eval(&coeffs, x))).collect();
            // Every 3-subset of 5 points recovers the same constant term.
            for i in 0..5 {
                for j in (i + 1)..5 {
                    for k in (j + 1)..5 {
                        let pts = [all[i], all[j], all[k]];
                        prop_assert_eq!(interpolate_at_zero(&pts), seed[0]);
                    }
                }
            }
        }
    }
}
