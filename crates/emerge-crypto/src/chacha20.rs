//! ChaCha20 stream cipher (RFC 8439).
//!
//! Provides the block function and a streaming XOR cipher. Verified against
//! the RFC 8439 section 2.3.2 / 2.4.2 test vectors.
//!
//! ```
//! use emerge_crypto::chacha20::ChaCha20;
//! let key = [1u8; 32];
//! let nonce = [2u8; 12];
//! let mut buf = *b"hello onion routing";
//! ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
//! // Applying the same keystream twice restores the plaintext.
//! ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
//! assert_eq!(&buf, b"hello onion routing");
//! ```

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

/// Streaming ChaCha20 cipher state.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; BLOCK_LEN],
    /// Offset of the next unused keystream byte; `BLOCK_LEN` means empty.
    offset: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Runs the 20 ChaCha rounds plus the feed-forward addition on `state`,
/// returning the 16 keystream words of one block.
#[inline]
fn keystream_words(state: &[u32; 16]) -> [u32; 16] {
    let mut working = *state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, &init) in working.iter_mut().zip(state.iter()) {
        *w = w.wrapping_add(init);
    }
    working
}

/// Number of blocks the wide (lane-parallel) keystream path computes at
/// once.
const LANES: usize = 4;

/// Adds two lane vectors (wrapping), by value: SSA-form aggregates are
/// what LLVM's SLP vectorizer folds into 128-bit `paddd`.
#[inline(always)]
fn add_lanes(a: [u32; LANES], b: [u32; LANES]) -> [u32; LANES] {
    let mut out = [0u32; LANES];
    for i in 0..LANES {
        out[i] = a[i].wrapping_add(b[i]);
    }
    out
}

/// XORs two lane vectors and rotates each lane left by `R`.
///
/// The rotation is deliberately spelled as an explicit shift-or rather
/// than `rotate_left`: the funnel-shift intrinsic the latter lowers to
/// blocks LLVM's SLP vectorizer from folding the lane loop into SIMD,
/// while shift-or vectorizes cleanly (measured ~3x keystream throughput
/// on AVX-512 hardware under `target-cpu=native`).
#[allow(clippy::manual_rotate)]
#[inline(always)]
fn xor_rotate_lanes<const R: u32>(a: [u32; LANES], b: [u32; LANES]) -> [u32; LANES] {
    let mut out = [0u32; LANES];
    for i in 0..LANES {
        let x = a[i] ^ b[i];
        out[i] = (x << R) | (x >> (32 - R));
    }
    out
}

/// Computes [`LANES`] consecutive keystream blocks at counters
/// `state[12] + 0..LANES`, lane-parallel (structure of arrays: word `i` of
/// lane `j` is `out[i][j]`). Bit-identical to [`LANES`] sequential
/// [`keystream_words`] calls — the whole-buffer fast path in
/// [`ChaCha20::apply_keystream`] leans on that equivalence, and the
/// property suite pins it.
///
/// The sixteen lane vectors live in named locals for the whole round
/// function (an indexed `[[u32; 4]; 16]` tends to stay in memory), so the
/// compiler keeps them in SIMD registers and lowers the lane loops to
/// 128-bit adds/xors/rotates on the baseline x86-64 target.
#[inline]
fn keystream_words_wide(state: &[u32; 16]) -> [[u32; LANES]; 16] {
    let mut x0 = [state[0]; LANES];
    let mut x1 = [state[1]; LANES];
    let mut x2 = [state[2]; LANES];
    let mut x3 = [state[3]; LANES];
    let mut x4 = [state[4]; LANES];
    let mut x5 = [state[5]; LANES];
    let mut x6 = [state[6]; LANES];
    let mut x7 = [state[7]; LANES];
    let mut x8 = [state[8]; LANES];
    let mut x9 = [state[9]; LANES];
    let mut x10 = [state[10]; LANES];
    let mut x11 = [state[11]; LANES];
    let mut x12 = [0u32; LANES];
    for (lane, ctr) in x12.iter_mut().enumerate() {
        *ctr = state[12].wrapping_add(lane as u32);
    }
    let mut x13 = [state[13]; LANES];
    let mut x14 = [state[14]; LANES];
    let mut x15 = [state[15]; LANES];
    let initial_x12 = x12;

    macro_rules! qr {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = add_lanes($a, $b);
            $d = xor_rotate_lanes::<16>($d, $a);
            $c = add_lanes($c, $d);
            $b = xor_rotate_lanes::<12>($b, $c);
            $a = add_lanes($a, $b);
            $d = xor_rotate_lanes::<8>($d, $a);
            $c = add_lanes($c, $d);
            $b = xor_rotate_lanes::<7>($b, $c);
        };
    }

    for _ in 0..10 {
        // Column rounds.
        qr!(x0, x4, x8, x12);
        qr!(x1, x5, x9, x13);
        qr!(x2, x6, x10, x14);
        qr!(x3, x7, x11, x15);
        // Diagonal rounds.
        qr!(x0, x5, x10, x15);
        qr!(x1, x6, x11, x12);
        qr!(x2, x7, x8, x13);
        qr!(x3, x4, x9, x14);
    }

    // Feed-forward: add the initial state (broadcast words; per-lane
    // counters for word 12).
    macro_rules! feed {
        ($x:ident, $i:expr) => {
            $x = add_lanes($x, [state[$i]; LANES]);
        };
    }
    feed!(x0, 0);
    feed!(x1, 1);
    feed!(x2, 2);
    feed!(x3, 3);
    feed!(x4, 4);
    feed!(x5, 5);
    feed!(x6, 6);
    feed!(x7, 7);
    feed!(x8, 8);
    feed!(x9, 9);
    feed!(x10, 10);
    feed!(x11, 11);
    x12 = add_lanes(x12, initial_x12);
    feed!(x13, 13);
    feed!(x14, 14);
    feed!(x15, 15);

    [
        x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
    ]
}

/// The 16-lane ChaCha20 keystream on AVX-512.
///
/// One `zmm` register holds state word `i` across sixteen consecutive
/// blocks, so a single `vprold`/`vpaddd`/`vpxord` triple advances all
/// sixteen — and AVX-512's native 32-bit rotate removes the shift-or pair
/// the portable lanes pay per rotation. Keystream bytes are bit-identical
/// to sequential [`keystream_words`] blocks (counter-ordered; pinned by
/// the `blockwise_matches_bytewise_reference` property test, which
/// crosses this path for every length ≥ 1024). The 4-lane portable path
/// remains the fallback below this width and on other CPUs.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // hardware intrinsics; bit-identity pinned by test
mod avx512 {
    use super::BLOCK_LEN;
    use std::arch::x86_64::*;

    /// Blocks per superblock: sixteen 64-byte blocks fill the sixteen
    /// u32 lanes of one `zmm` per state word.
    pub const WIDE_BLOCKS: usize = 16;

    /// Whether the running CPU has the AVX-512 F/BW features this path
    /// compiles against. `is_x86_feature_detected!` caches each answer.
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw")
    }

    /// XORs the keystream of blocks `state[12] .. state[12] + 16` into
    /// `data`, which must be exactly [`WIDE_BLOCKS`] `* 64` bytes.
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] on this CPU.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn xor_blocks(state: &[u32; 16], data: &mut [u8]) {
        // SAFETY: caller upholds the `available()` contract (AVX-512 F/BW confirmed
        // by cpuid), so every 512-bit intrinsic here is supported. The only memory
        // the kernel touches is `data`, via unaligned `loadu`/`storeu` on sixteen
        // 64-byte blocks — exactly `WIDE_BLOCKS * BLOCK_LEN` bytes, which the
        // dispatcher guarantees (debug-asserted on entry).
        unsafe {
            debug_assert_eq!(data.len(), WIDE_BLOCKS * BLOCK_LEN);
            let mut x = [_mm512_setzero_si512(); 16];
            for (xi, &word) in x.iter_mut().zip(state.iter()) {
                *xi = _mm512_set1_epi32(word as i32);
            }
            // Per-lane block counters: lane `l` runs counter `state[12] + l`.
            x[12] = _mm512_add_epi32(
                x[12],
                _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
            );
            let init = x;

            macro_rules! qr {
                ($a:expr, $b:expr, $c:expr, $d:expr) => {
                    x[$a] = _mm512_add_epi32(x[$a], x[$b]);
                    x[$d] = _mm512_rol_epi32(_mm512_xor_si512(x[$d], x[$a]), 16);
                    x[$c] = _mm512_add_epi32(x[$c], x[$d]);
                    x[$b] = _mm512_rol_epi32(_mm512_xor_si512(x[$b], x[$c]), 12);
                    x[$a] = _mm512_add_epi32(x[$a], x[$b]);
                    x[$d] = _mm512_rol_epi32(_mm512_xor_si512(x[$d], x[$a]), 8);
                    x[$c] = _mm512_add_epi32(x[$c], x[$d]);
                    x[$b] = _mm512_rol_epi32(_mm512_xor_si512(x[$b], x[$c]), 7);
                };
            }
            for _ in 0..10 {
                // Column rounds.
                qr!(0, 4, 8, 12);
                qr!(1, 5, 9, 13);
                qr!(2, 6, 10, 14);
                qr!(3, 7, 11, 15);
                // Diagonal rounds.
                qr!(0, 5, 10, 15);
                qr!(1, 6, 11, 12);
                qr!(2, 7, 8, 13);
                qr!(3, 4, 9, 14);
            }
            for (xi, i) in x.iter_mut().zip(init.iter()) {
                *xi = _mm512_add_epi32(*xi, *i);
            }

            // Spill word-major (register `i` holds word `i` of every block),
            // then XOR block-major: block `b`'s word `w` is `scratch[16w + b]`.
            // x86 u32 lanes are little-endian, matching ChaCha serialization.
            let mut scratch = [0u32; WIDE_BLOCKS * 16];
            for (i, xi) in x.iter().enumerate() {
                _mm512_storeu_si512(scratch.as_mut_ptr().add(16 * i).cast(), *xi);
            }
            for (b, block) in data.chunks_exact_mut(BLOCK_LEN).enumerate() {
                for (w, word_bytes) in block.chunks_exact_mut(4).enumerate() {
                    let ks = scratch[16 * w + b];
                    // LINT-WAIVER(panic): chunks_exact(4) yields exactly 4-byte slices
                    let v = u32::from_le_bytes(word_bytes.try_into().expect("4-byte chunk")) ^ ks;
                    word_bytes.copy_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
}

/// Computes one 64-byte ChaCha20 block for the given key, nonce and counter.
pub fn chacha20_block(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
) -> [u8; BLOCK_LEN] {
    let words = keystream_words(&initial_state(key, nonce, counter));
    let mut out = [0u8; BLOCK_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(words.iter()) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    out
}

fn initial_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    state
}

impl ChaCha20 {
    /// Creates a cipher positioned at block `counter` of the keystream.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        ChaCha20 {
            state: initial_state(key, nonce, counter),
            keystream: [0u8; BLOCK_LEN],
            offset: BLOCK_LEN,
        }
    }

    /// XORs the keystream into `data` in place, advancing the stream.
    ///
    /// Whole 64-byte blocks bypass the keystream buffer entirely: each
    /// block's words are XORed into `data` in u64 chunks, one branch per
    /// block instead of one per byte. Partial blocks (a leftover tail, or
    /// resuming mid-block from a previous call) still go through the
    /// buffered path, so streaming semantics are unchanged.
    pub fn apply_keystream(&mut self, mut data: &mut [u8]) {
        // Drain keystream left over from a previous partial block.
        if self.offset < BLOCK_LEN {
            let take = (BLOCK_LEN - self.offset).min(data.len());
            let (head, rest) = std::mem::take(&mut data).split_at_mut(take);
            for (byte, &ks) in head
                .iter_mut()
                .zip(self.keystream[self.offset..self.offset + take].iter())
            {
                *byte ^= ks;
            }
            self.offset += take;
            data = rest;
        }
        // Superblocks of sixteen on AVX-512 hardware: one feature check
        // up front, then the kernel advances the counter 16 blocks a call.
        #[cfg(target_arch = "x86_64")]
        if data.len() >= avx512::WIDE_BLOCKS * BLOCK_LEN && avx512::available() {
            while data.len() >= avx512::WIDE_BLOCKS * BLOCK_LEN {
                let (chunk, rest) =
                    std::mem::take(&mut data).split_at_mut(avx512::WIDE_BLOCKS * BLOCK_LEN);
                // SAFETY: `avx512::available()` confirmed AVX-512 F/BW.
                #[allow(unsafe_code)]
                unsafe {
                    avx512::xor_blocks(&self.state, chunk);
                };
                self.state[12] = self.state[12].wrapping_add(avx512::WIDE_BLOCKS as u32);
                data = rest;
            }
        }
        // Wide path: four whole blocks at a time, lane-parallel (the
        // compiler vectorizes the lane arithmetic), XORed in u64 chunks.
        while data.len() >= LANES * BLOCK_LEN {
            let wide = keystream_words_wide(&self.state);
            self.state[12] = self.state[12].wrapping_add(LANES as u32);
            let (chunk, rest) = std::mem::take(&mut data).split_at_mut(LANES * BLOCK_LEN);
            for (lane, block) in chunk.chunks_exact_mut(BLOCK_LEN).enumerate() {
                for (pair, words) in block.chunks_exact_mut(8).zip(wide.chunks_exact(2)) {
                    let ks = (words[0][lane] as u64) | ((words[1][lane] as u64) << 32);
                    // LINT-WAIVER(panic): chunks_exact(8) yields exactly 8-byte slices
                    let x = u64::from_le_bytes(pair.try_into().expect("8-byte chunk")) ^ ks;
                    pair.copy_from_slice(&x.to_le_bytes());
                }
            }
            data = rest;
        }
        // Whole blocks: generate straight from the state, no buffering.
        while data.len() >= BLOCK_LEN {
            let words = keystream_words(&self.state);
            self.state[12] = self.state[12].wrapping_add(1);
            let (block, rest) = std::mem::take(&mut data).split_at_mut(BLOCK_LEN);
            for (chunk, pair) in block.chunks_exact_mut(8).zip(words.chunks_exact(2)) {
                let ks = (pair[0] as u64) | ((pair[1] as u64) << 32);
                // LINT-WAIVER(panic): chunks_exact(8) yields exactly 8-byte slices
                let x = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")) ^ ks;
                chunk.copy_from_slice(&x.to_le_bytes());
            }
            data = rest;
        }
        // Tail shorter than a block: buffer a fresh block and consume part.
        if !data.is_empty() {
            self.refill();
            for (byte, &ks) in data.iter_mut().zip(self.keystream.iter()) {
                *byte ^= ks;
            }
            self.offset = data.len();
        }
    }

    fn refill(&mut self) {
        let words = keystream_words(&self.state);
        for (chunk, word) in self.keystream.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        // Increment the block counter (word 12) for the next refill.
        self.state[12] = self.state[12].wrapping_add(1);
        self.offset = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 section 2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, &nonce, 1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 section 2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut buf);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(buf, expected);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = [42u8; 32];
        let nonce = [7u8; 12];
        let original: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let mut buf = original.clone();
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
        assert_ne!(buf, original);
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn split_application_matches_oneshot() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let mut oneshot = vec![0u8; 200];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut oneshot);

        let mut split = vec![0u8; 200];
        let mut cipher = ChaCha20::new(&key, &nonce, 0);
        // Apply across irregular chunk boundaries (1, 63, 64, 72 bytes).
        let mut pos = 0;
        for chunk in [1usize, 63, 64, 72] {
            cipher.apply_keystream(&mut split[pos..pos + chunk]);
            pos += chunk;
        }
        assert_eq!(split, oneshot);
    }

    #[test]
    fn counter_offsets_keystream_by_blocks() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let mut from_zero = vec![0u8; 128];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut from_zero);
        let mut from_one = vec![0u8; 64];
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut from_one);
        assert_eq!(&from_zero[64..], &from_one[..]);
    }

    /// Per-byte reference keystream built from the RFC-verified block
    /// function: block `counter + i` supplies bytes `64i..64i+64`.
    fn reference_keystream(key: &[u8; 32], nonce: &[u8; 12], counter: u32, len: usize) -> Vec<u8> {
        let mut ks = Vec::with_capacity(len + BLOCK_LEN);
        let mut block = 0u32;
        while ks.len() < len {
            ks.extend_from_slice(&chacha20_block(key, nonce, counter.wrapping_add(block)));
            block += 1;
        }
        ks.truncate(len);
        ks
    }

    use proptest::prelude::*;

    proptest! {
        /// The block-wise fast paths equal the per-byte reference for any
        /// length (aligned or not) and any starting counter. The range
        /// crosses the 16-block AVX-512 superblock width (1024) so the
        /// hardware path is exercised against the reference where present.
        #[test]
        fn blockwise_matches_bytewise_reference(
            len in 0usize..2200,
            counter: u32,
            key_seed: u8,
            nonce_seed: u8,
        ) {
            let key = [key_seed; 32];
            let nonce = [nonce_seed; 12];
            let mut buf: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let original = buf.clone();
            ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
            let ks = reference_keystream(&key, &nonce, counter, len);
            let expected: Vec<u8> =
                original.iter().zip(&ks).map(|(&b, &k)| b ^ k).collect();
            prop_assert_eq!(buf, expected);
        }

        /// Streaming across arbitrary chunk boundaries — including
        /// repeated mid-block resumes — equals the one-shot application.
        #[test]
        fn chunked_streaming_matches_oneshot(
            chunks in proptest::collection::vec(0usize..100, 0..8),
        ) {
            let key = [0x42u8; 32];
            let nonce = [0x99u8; 12];
            let total: usize = chunks.iter().sum();
            let mut oneshot: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
            let mut streamed = oneshot.clone();
            ChaCha20::new(&key, &nonce, 5).apply_keystream(&mut oneshot);

            let mut cipher = ChaCha20::new(&key, &nonce, 5);
            let mut pos = 0;
            for chunk in chunks {
                cipher.apply_keystream(&mut streamed[pos..pos + chunk]);
                pos += chunk;
            }
            prop_assert_eq!(streamed, oneshot);
        }
    }

    #[test]
    fn exact_block_boundary_then_resume() {
        // Consume exactly one block, then a misaligned tail: the second
        // call must pick up at block 1 byte 0 with no gap or overlap.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut joined = vec![0u8; 64 + 37];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut joined);

        let mut split = vec![0u8; 64 + 37];
        let mut cipher = ChaCha20::new(&key, &nonce, 0);
        cipher.apply_keystream(&mut split[..64]);
        cipher.apply_keystream(&mut split[64..]);
        assert_eq!(split, joined);
    }

    #[test]
    fn empty_apply_is_a_noop() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut a = vec![0u8; 100];
        let mut cipher = ChaCha20::new(&key, &nonce, 0);
        cipher.apply_keystream(&mut []);
        cipher.apply_keystream(&mut a);
        let mut b = vec![0u8; 100];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut b);
        assert_eq!(a, b, "an empty apply must not advance the stream");
    }

    #[test]
    fn different_nonce_different_keystream() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::new(&key, &[0u8; 12], 0).apply_keystream(&mut a);
        ChaCha20::new(&key, &[1u8; 12], 0).apply_keystream(&mut b);
        assert_ne!(a, b);
    }
}
