//! Share commitments: pollution-resistant Shamir reconstruction.
//!
//! The paper's key-share routing implicitly assumes malicious holders
//! either forward a share faithfully or withhold it. A cheaper attack is
//! **pollution**: forward a corrupted share so reconstruction silently
//! yields a wrong key and the package decryption fails downstream — a
//! drop attack that spends no quorum. The fix is classical: the sender
//! commits to every share with a hash, the commitment vector travels
//! inside the (authenticated) package headers, and receivers discard any
//! share that does not match its commitment before combining.
//!
//! ```
//! use emerge_crypto::commitments::ShareCommitments;
//! use emerge_crypto::shamir;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), emerge_crypto::CryptoError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut shares = shamir::split(b"the key", 2, 3, &mut rng)?;
//! let commitments = ShareCommitments::commit(&shares);
//!
//! shares[1].data[0] ^= 0xFF; // a malicious holder pollutes its share
//! let clean = commitments.filter_valid(&shares);
//! assert_eq!(clean.len(), 2);
//! assert_eq!(shamir::combine(&clean, 2)?, b"the key");
//! # Ok(())
//! # }
//! ```

use crate::error::CryptoError;
use crate::keys::KeyShare;
use crate::sha256::{Sha256, DIGEST_LEN};
use crate::wire::{Reader, Writer};

/// Domain separator for share commitments.
const COMMIT_DOMAIN: &[u8] = b"emerge-share-commitment-v1";

/// A commitment vector: one hash per share index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareCommitments {
    /// `digests[i]` commits to the share with index `i + 1`.
    digests: Vec<[u8; DIGEST_LEN]>,
}

impl ShareCommitments {
    /// Commits to a full share set (indices must be `1..=n` in order,
    /// as produced by [`crate::shamir::split`]).
    ///
    /// # Panics
    ///
    /// Panics if the shares are not consecutively indexed from 1.
    pub fn commit(shares: &[KeyShare]) -> Self {
        let digests = shares
            .iter()
            .enumerate()
            .map(|(i, share)| {
                // LINT-WAIVER(panic): documented # Panics contract: shares must be consecutively indexed from 1
                assert_eq!(
                    share.index as usize,
                    i + 1,
                    "commitment vectors require shares ordered by index"
                );
                digest_share(share)
            })
            .collect();
        ShareCommitments { digests }
    }

    /// Number of committed shares (`n`).
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// Verifies one share against its commitment.
    ///
    /// The comparison goes through the constant-time `verify_tag` path:
    /// commitments are public, but the digest of a candidate share is
    /// derived from (possibly secret) share bytes, and an early-exit
    /// comparison would leak how many digest bytes matched.
    pub fn verify(&self, share: &KeyShare) -> bool {
        let idx = share.index as usize;
        if idx == 0 || idx > self.digests.len() {
            return false;
        }
        crate::hmac::verify_tag(&self.digests[idx - 1], &digest_share(share))
    }

    /// Returns the subset of `shares` that match their commitments,
    /// dropping polluted or foreign shares.
    pub fn filter_valid(&self, shares: &[KeyShare]) -> Vec<KeyShare> {
        shares.iter().filter(|s| self.verify(s)).cloned().collect()
    }

    /// Serializes the vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u16(self.digests.len() as u16);
        for d in &self.digests {
            w.put_raw(d);
        }
        w.into_bytes()
    }

    /// Parses a vector.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let count = r.get_u16()? as usize;
        let mut digests = Vec::with_capacity(count);
        for _ in 0..count {
            let raw = r.get_raw(DIGEST_LEN)?;
            let mut d = [0u8; DIGEST_LEN];
            d.copy_from_slice(raw);
            digests.push(d);
        }
        r.expect_end()?;
        Ok(ShareCommitments { digests })
    }
}

fn digest_share(share: &KeyShare) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(COMMIT_DOMAIN);
    h.update(&[share.index]);
    h.update(&(share.data.len() as u64).to_le_bytes());
    h.update(&share.data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shares(m: usize, n: usize, seed: u64) -> Vec<KeyShare> {
        let mut rng = StdRng::seed_from_u64(seed);
        shamir::split(b"a secret key", m, n, &mut rng).unwrap()
    }

    #[test]
    fn honest_shares_all_verify() {
        let s = shares(3, 5, 1);
        let c = ShareCommitments::commit(&s);
        assert_eq!(c.len(), 5);
        for share in &s {
            assert!(c.verify(share));
        }
        assert_eq!(c.filter_valid(&s).len(), 5);
    }

    #[test]
    fn polluted_share_is_rejected() {
        let mut s = shares(3, 5, 2);
        let c = ShareCommitments::commit(&s);
        s[2].data[0] ^= 1;
        assert!(!c.verify(&s[2]));
        let clean = c.filter_valid(&s);
        assert_eq!(clean.len(), 4);
        assert_eq!(shamir::combine(&clean, 3).unwrap(), b"a secret key");
    }

    #[test]
    fn foreign_and_out_of_range_shares_rejected() {
        let s = shares(2, 3, 3);
        let c = ShareCommitments::commit(&s);
        let foreign = shares(2, 3, 4);
        assert!(!c.verify(&foreign[0]));
        let out_of_range = KeyShare::new(200, vec![0; 12]);
        assert!(!c.verify(&out_of_range));
        let zero = KeyShare::new(0, vec![0; 12]);
        assert!(!c.verify(&zero));
    }

    #[test]
    fn pollution_below_surviving_threshold_still_fails_loudly() {
        // If the adversary pollutes so many shares that fewer than m
        // remain, combine errors instead of returning a wrong key.
        let mut s = shares(4, 5, 5);
        let c = ShareCommitments::commit(&s);
        for share in s.iter_mut().take(2) {
            share.data[0] ^= 0xAA;
        }
        let clean = c.filter_valid(&s);
        assert_eq!(clean.len(), 3);
        assert!(shamir::combine(&clean, 4).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let s = shares(2, 4, 6);
        let c = ShareCommitments::commit(&s);
        let parsed = ShareCommitments::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(parsed, c);
        for share in &s {
            assert!(parsed.verify(share));
        }
    }

    #[test]
    fn truncated_serialization_rejected() {
        let c = ShareCommitments::commit(&shares(2, 3, 7));
        let bytes = c.to_bytes();
        assert!(ShareCommitments::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "ordered by index")]
    fn misordered_shares_panic() {
        let mut s = shares(2, 3, 8);
        s.swap(0, 2);
        let _ = ShareCommitments::commit(&s);
    }

    proptest! {
        #[test]
        fn any_single_bit_flip_is_caught(
            seed: u64,
            victim in 0usize..5,
            byte in 0usize..12,
            bit in 0u8..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = shamir::split(&[0xAB; 12], 3, 5, &mut rng).unwrap();
            let c = ShareCommitments::commit(&s);
            s[victim].data[byte] ^= 1 << bit;
            prop_assert!(!c.verify(&s[victim]));
            // Everyone else still verifies.
            for (i, share) in s.iter().enumerate() {
                if i != victim {
                    prop_assert!(c.verify(share));
                }
            }
        }
    }
}
