//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used by [`crate::hkdf`] for key derivation and available directly for
//! message authentication. Verified against RFC 4231 test vectors.
//!
//! ```
//! use emerge_crypto::hmac::hmac_sha256;
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256 context.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    ///
    /// Keys longer than the SHA-256 block size (64 bytes) are hashed first,
    /// per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut padded = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            padded[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= padded[i];
            opad[i] ^= padded[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte authentication tag.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }
}

/// One-shot HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time equality check for MAC tags.
///
/// Both inputs must have the same length for the comparison to succeed;
/// differing lengths return `false` immediately (length is public here).
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"incremental-key";
        let mut mac = HmacSha256::new(key);
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(key, b"hello world"));
    }

    #[test]
    fn verify_tag_accepts_equal_rejects_unequal() {
        let t1 = hmac_sha256(b"k", b"m");
        let mut t2 = t1;
        assert!(verify_tag(&t1, &t2));
        t2[0] ^= 1;
        assert!(!verify_tag(&t1, &t2));
        assert!(!verify_tag(&t1, &t1[..31]));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
