//! Minimal length-prefixed wire format helpers.
//!
//! Onion layers, DHT RPC payloads and cloud records all serialize through
//! these little-endian, length-prefixed primitives. Using one tiny hand-
//! rolled format keeps the whole system dependency-free and the parsing
//! failure modes explicit.

use crate::error::CryptoError;

/// Append-only byte writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends bytes with a u32 length prefix.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the u32 frame limit (4 GiB): a frame
    /// that cannot be length-prefixed must fail loudly, never truncate.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        // LINT-WAIVER(panic): an unencodable >4 GiB frame must abort; silent truncation would corrupt the wire format
        let len = u32::try_from(bytes.len()).expect("frame exceeds the u32 wire limit");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends a length-prefixed table of byte strings: a u16 entry count
    /// followed by each entry as u32-length-prefixed bytes. This is the
    /// framing of the share scheme's flat segment table (format v2).
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u16::MAX` entries — beyond the
    /// format's table limit, failing loud beats silent truncation.
    pub fn put_table(&mut self, entries: &[Vec<u8>]) -> &mut Self {
        // LINT-WAIVER(panic): an unencodable >65535-entry table must abort; silent truncation would corrupt the wire format
        let count = u16::try_from(entries.len()).expect("table exceeds the u16 entry limit");
        self.put_u16(count);
        for entry in entries {
            self.put_bytes(entry);
        }
        self
    }

    /// Finishes and returns the accumulated buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The accumulated bytes without consuming the writer, so one writer
    /// can serve as a reusable scratch buffer across serializations.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Empties the buffer, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Current length of the buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based byte reader matching [`Writer`].
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CryptoError> {
        if self.buf.len() - self.pos < n {
            return Err(CryptoError::InvalidLength {
                context,
                expected: n,
                actual: self.buf.len() - self.pos,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CryptoError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, CryptoError> {
        let s = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CryptoError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CryptoError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        self.take(n, "raw bytes")
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CryptoError> {
        let len = self.get_u32()? as usize;
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a table written by [`Writer::put_table`], returning owned
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] when the count or any entry overruns the
    /// input.
    pub fn get_table(&mut self) -> Result<Vec<Vec<u8>>, CryptoError> {
        let count = self.get_u16()? as usize;
        // Cap the pre-allocation by what the input could possibly hold
        // (each entry costs at least its 4-byte length prefix), so a
        // hostile count cannot force a huge reservation before the
        // per-entry reads fail.
        let mut entries = Vec::with_capacity(count.min(self.remaining() / 4 + 1));
        for _ in 0..count {
            entries.push(self.get_bytes()?.to_vec());
        }
        Ok(entries)
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor offset from the start of the buffer, for parsers
    /// that record spans into the backing buffer instead of copying out.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns an error if any input remains unconsumed.
    ///
    /// Strict parsers call this to reject trailing garbage.
    pub fn expect_end(&self) -> Result<(), CryptoError> {
        if self.remaining() != 0 {
            return Err(CryptoError::Malformed("trailing bytes after structure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u16(0x1234)
            .put_u32(0xDEAD_BEEF)
            .put_u64(0x0102_0304_0506_0708)
            .put_bytes(b"hello")
            .put_raw(b"xyz");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_raw(3).unwrap(), b"xyz");
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn short_reads_error_cleanly() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        // Failed read consumes nothing.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn bytes_with_oversized_length_prefix_error() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes follow
        w.put_raw(b"short");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn expect_end_rejects_trailing() {
        let r = Reader::new(&[1]);
        assert!(matches!(r.expect_end(), Err(CryptoError::Malformed(_))));
    }

    #[test]
    fn empty_writer_properties() {
        let w = Writer::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn table_roundtrip_and_scratch_reuse() {
        let entries = vec![b"one".to_vec(), Vec::new(), vec![7u8; 300]];
        let mut w = Writer::new();
        w.put_table(&entries);
        let mut r = Reader::new(w.as_slice());
        assert_eq!(r.get_table().unwrap(), entries);
        assert!(r.expect_end().is_ok());
        // The writer is reusable as a scratch buffer.
        w.clear();
        assert!(w.is_empty());
        w.put_table(&[]);
        let mut r = Reader::new(w.as_slice());
        assert_eq!(r.get_table().unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn table_with_lying_count_errors_without_allocation_blowup() {
        let mut w = Writer::new();
        w.put_u16(u16::MAX); // claims 65535 entries in a 2-byte buffer
        let mut r = Reader::new(w.as_slice());
        assert!(r.get_table().is_err());
    }

    proptest! {
        #[test]
        fn table_roundtrip(
            entries in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40),
                0..12,
            )
        ) {
            let mut w = Writer::new();
            w.put_table(&entries);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_table().unwrap(), entries);
            prop_assert!(r.expect_end().is_ok());
        }

        #[test]
        fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut w = Writer::new();
            w.put_bytes(&data);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_bytes().unwrap(), &data[..]);
            prop_assert!(r.expect_end().is_ok());
        }

        #[test]
        fn interleaved_roundtrip(
            a: u64,
            b in proptest::collection::vec(any::<u8>(), 0..50),
            c: u16,
        ) {
            let mut w = Writer::new();
            w.put_u64(a).put_bytes(&b).put_u16(c);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_u64().unwrap(), a);
            prop_assert_eq!(r.get_bytes().unwrap(), &b[..]);
            prop_assert_eq!(r.get_u16().unwrap(), c);
        }
    }
}
