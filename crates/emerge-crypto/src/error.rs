//! Error type shared by all cryptographic operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible cryptographic operations.
///
/// Every public fallible function in `emerge-crypto` returns
/// `Result<_, CryptoError>`; the variants are deliberately coarse so that
/// callers cannot use error details as a decryption oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Authenticated decryption failed: the ciphertext or the associated
    /// data was tampered with, or the wrong key/nonce was used.
    AuthenticationFailed,
    /// An input had an invalid length (e.g. a truncated ciphertext or an
    /// onion layer shorter than its header).
    InvalidLength {
        /// What was being parsed when the length check failed.
        context: &'static str,
        /// The number of bytes that were expected (a minimum).
        expected: usize,
        /// The number of bytes that were actually present.
        actual: usize,
    },
    /// Shamir reconstruction was attempted with fewer shares than the
    /// threshold `m`, or with duplicated share indices.
    NotEnoughShares {
        /// The threshold `m` required for reconstruction.
        threshold: usize,
        /// The number of usable (distinct-index) shares supplied.
        supplied: usize,
    },
    /// A Shamir share had index 0 or the share set mixed different lengths.
    MalformedShare(&'static str),
    /// A serialized structure failed to parse.
    Malformed(&'static str),
    /// Parameters were out of the supported range (e.g. `m > n` or
    /// `n > 255` for GF(256) sharing).
    InvalidParameters(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => {
                write!(f, "authentication failed during decryption")
            }
            CryptoError::InvalidLength {
                context,
                expected,
                actual,
            } => write!(
                f,
                "invalid length while parsing {context}: expected at least {expected} bytes, got {actual}"
            ),
            CryptoError::NotEnoughShares {
                threshold,
                supplied,
            } => write!(
                f,
                "not enough shares to reconstruct: threshold {threshold}, supplied {supplied}"
            ),
            CryptoError::MalformedShare(msg) => write!(f, "malformed share: {msg}"),
            CryptoError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            CryptoError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            CryptoError::AuthenticationFailed,
            CryptoError::InvalidLength {
                context: "onion layer",
                expected: 16,
                actual: 3,
            },
            CryptoError::NotEnoughShares {
                threshold: 3,
                supplied: 1,
            },
            CryptoError::MalformedShare("index zero"),
            CryptoError::Malformed("bad tag"),
            CryptoError::InvalidParameters("m > n"),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
