//! Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented with three 44-bit limbs and 128-bit intermediate products
//! (the poly1305-donna-64 strategy): one block costs three wide
//! multiplications instead of the twenty-five 32-bit products of the
//! classic 26-bit-limb layout, which roughly triples throughput on any
//! 64-bit target. Long inputs are absorbed two blocks per iteration via
//! the precomputed square of r — `h' = (h + m0)·r² + m1·r` — which
//! halves the length of the serial carry-reduction chain and lets the
//! six wide products issue independently. Verified against the RFC 8439
//! section 2.5.2 and appendix A.3 test vectors.

/// Poly1305 key length (r || s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Little-endian u64 from an 8-byte subrange of a fixed-size block.
#[inline(always)]
fn le64(bytes: &[u8]) -> u64 {
    // LINT-WAIVER(panic): every caller passes a constant 8-byte subrange of a fixed-size block
    u64::from_le_bytes(bytes.try_into().expect("8-byte subrange"))
}

/// Fixed 16-byte view of a half of a 32-byte block pair.
#[inline(always)]
fn block16(bytes: &[u8]) -> &[u8; 16] {
    // LINT-WAIVER(panic): every caller passes a constant 16-byte half of a split_at(32) pair
    bytes.try_into().expect("16-byte block")
}

/// Low 44 bits.
const MASK44: u64 = (1 << 44) - 1;
/// Low 42 bits (the top limb of a 130-bit value).
const MASK42: u64 = (1 << 42) - 1;

/// Incremental Poly1305 MAC state.
///
/// The key must never be reused across messages; in this crate each AEAD
/// invocation derives a fresh one-time key from ChaCha20 block 0.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// r, clamped, in three 44-bit limbs (r < 2^124 after clamping, so
    /// `r[2]` fits 36 bits).
    r: [u64; 3],
    /// r² mod 2^130 - 5, partially reduced to 44/44/42-bit limbs; feeds
    /// the two-block absorption path.
    r2: [u64; 3],
    /// Accumulator in 44/44/42-bit limbs.
    h: [u64; 3],
    /// s (the final addend), as two little-endian 64-bit words.
    s: [u64; 2],
    buffer: [u8; 16],
    buffered: usize,
}

impl Poly1305 {
    /// Creates a MAC from a 32-byte one-time key `(r || s)`.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per RFC 8439 (mask 0x0ffffffc0ffffffc0ffffffc0fffffff,
        // applied here to the two little-endian 64-bit words).
        let t0 = le64(&key[0..8]) & 0x0FFF_FFFC_0FFF_FFFF;
        let t1 = le64(&key[8..16]) & 0x0FFF_FFFC_0FFF_FFFC;

        let r = [t0 & MASK44, ((t0 >> 44) | (t1 << 20)) & MASK44, t1 >> 24];

        let s = [le64(&key[16..24]), le64(&key[24..32])];

        Poly1305 {
            r,
            r2: mul_reduce(r, r),
            h: [0; 3],
            s,
            buffer: [0u8; 16],
            buffered: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let want = 16 - self.buffered;
            let take = want.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 16 {
                let block = self.buffer;
                self.process_block(&block, 1 << 40);
                self.buffered = 0;
            }
        }
        while data.len() >= 32 {
            let (pair, rest) = data.split_at(32);
            self.process_block_pair(block16(&pair[..16]), block16(&pair[16..]));
            data = rest;
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            let mut tmp = [0u8; 16];
            tmp.copy_from_slice(block);
            self.process_block(&tmp, 1 << 40);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the MAC and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            // Final partial block: append 0x01 then zero-pad, with no high bit.
            let mut block = [0u8; 16];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 1;
            self.process_block(&block, 0);
        }

        // Full carry propagation of h (including the 2^130 ≡ 5 wrap).
        let [mut h0, mut h1, mut h2] = self.h;
        let mut c;
        c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;
        c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;

        // Compute g = h + 5 - 2^130. The top bit of g2 (as a signed value)
        // tells us whether h < p; select constant-time with full-width
        // masks (poly1305-donna's strategy).
        let mut g0 = h0 + 5;
        c = g0 >> 44;
        g0 &= MASK44;
        let mut g1 = h1 + c;
        c = g1 >> 44;
        g1 &= MASK44;
        let g2 = (h2 + c).wrapping_sub(1 << 42);
        // mask = all-ones if h >= p (select g), zero otherwise (select h).
        let mask = (g2 >> 63).wrapping_sub(1);
        let f0 = (h0 & !mask) | (g0 & mask);
        let f1 = (h1 & !mask) | (g1 & mask);
        let f2 = (h2 & !mask) | (g2 & mask);

        // Convert back to two 64-bit little-endian words (mod 2^128) and
        // add s modulo 2^128.
        let w0 = f0 | (f1 << 44);
        let w1 = (f1 >> 20) | (f2 << 24);
        let (w0, carry) = w0.overflowing_add(self.s[0]);
        let w1 = w1.wrapping_add(self.s[1]).wrapping_add(carry as u64);

        let mut tag = [0u8; TAG_LEN];
        tag[..8].copy_from_slice(&w0.to_le_bytes());
        tag[8..].copy_from_slice(&w1.to_le_bytes());
        tag
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(message);
        p.finalize()
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u64) {
        let t0 = le64(&block[0..8]);
        let t1 = le64(&block[8..16]);

        // h += message block (with the high bit per RFC 8439 at 2^128 =
        // 2^88 · 2^40).
        let h0 = self.h[0] + (t0 & MASK44);
        let h1 = self.h[1] + (((t0 >> 44) | (t1 << 20)) & MASK44);
        let h2 = self.h[2] + ((t1 >> 24) | hibit);

        // h *= r (mod 2^130 - 5). Cross terms fold through 2^132 ≡ 20:
        // limb products that land at or above 2^130 re-enter the bottom
        // multiplied by 20 (= 4 · 5).
        let [r0, r1, r2] = self.r;
        let s1 = r1 * 20;
        let s2 = r2 * 20;

        let d0 =
            (h0 as u128) * (r0 as u128) + (h1 as u128) * (s2 as u128) + (h2 as u128) * (s1 as u128);
        let mut d1 =
            (h0 as u128) * (r1 as u128) + (h1 as u128) * (r0 as u128) + (h2 as u128) * (s2 as u128);
        let mut d2 =
            (h0 as u128) * (r2 as u128) + (h1 as u128) * (r1 as u128) + (h2 as u128) * (r0 as u128);

        // Partial carry reduction back to 44/44/42-bit limbs.
        d1 += d0 >> 44;
        let mut h0 = (d0 as u64) & MASK44;
        d2 += d1 >> 44;
        let h1 = (d1 as u64) & MASK44;
        let carry = (d2 >> 42) as u64;
        let h2 = (d2 as u64) & MASK42;
        h0 += carry * 5;
        let carry = h0 >> 44;
        h0 &= MASK44;

        self.h = [h0, h1 + carry, h2];
    }

    /// Absorbs two full message blocks with a single carry reduction:
    /// `h' = (h + m0)·r² + m1·r  (mod 2^130 - 5)`, which equals the
    /// sequential `((h + m0)·r + m1)·r` by distributivity. The six wide
    /// products carry no data dependencies between them, so they
    /// pipeline where the one-block path serialises on the reduction.
    fn process_block_pair(&mut self, b0: &[u8; 16], b1: &[u8; 16]) {
        let t0 = le64(&b0[0..8]);
        let t1 = le64(&b0[8..16]);
        let u0 = le64(&b1[0..8]);
        let u1 = le64(&b1[8..16]);

        // a = h + m0, b = m1, both with the 2^128 high bit set.
        let a0 = self.h[0] + (t0 & MASK44);
        let a1 = self.h[1] + (((t0 >> 44) | (t1 << 20)) & MASK44);
        let a2 = self.h[2] + ((t1 >> 24) | (1 << 40));
        let b0 = u0 & MASK44;
        let b1 = ((u0 >> 44) | (u1 << 20)) & MASK44;
        let b2 = (u1 >> 24) | (1 << 40);

        // d = a·r² + b·r, cross terms folded through 2^132 ≡ 20 exactly
        // as in the one-block path. Worst-case limb sums stay below
        // 2^96, far inside u128.
        let [r0, r1, r2] = self.r;
        let s1 = r1 * 20;
        let s2 = r2 * 20;
        let [q0, q1, q2] = self.r2;
        let p1 = q1 * 20;
        let p2 = q2 * 20;

        let d0 = (a0 as u128) * (q0 as u128)
            + (a1 as u128) * (p2 as u128)
            + (a2 as u128) * (p1 as u128)
            + (b0 as u128) * (r0 as u128)
            + (b1 as u128) * (s2 as u128)
            + (b2 as u128) * (s1 as u128);
        let mut d1 = (a0 as u128) * (q1 as u128)
            + (a1 as u128) * (q0 as u128)
            + (a2 as u128) * (p2 as u128)
            + (b0 as u128) * (r1 as u128)
            + (b1 as u128) * (r0 as u128)
            + (b2 as u128) * (s2 as u128);
        let mut d2 = (a0 as u128) * (q2 as u128)
            + (a1 as u128) * (q1 as u128)
            + (a2 as u128) * (q0 as u128)
            + (b0 as u128) * (r2 as u128)
            + (b1 as u128) * (r1 as u128)
            + (b2 as u128) * (r0 as u128);

        d1 += d0 >> 44;
        let mut h0 = (d0 as u64) & MASK44;
        d2 += d1 >> 44;
        let h1 = (d1 as u64) & MASK44;
        let carry = (d2 >> 42) as u64;
        let h2 = (d2 as u64) & MASK42;
        h0 += carry * 5;
        let carry = h0 >> 44;
        h0 &= MASK44;

        self.h = [h0, h1 + carry, h2];
    }
}

/// `(a · b) mod 2^130 - 5`, partially reduced to 44/44/42-bit limbs.
/// Used once per MAC to square r for the two-block absorption path.
fn mul_reduce(a: [u64; 3], b: [u64; 3]) -> [u64; 3] {
    let [b0, b1, b2] = b;
    let s1 = b1 * 20;
    let s2 = b2 * 20;

    let d0 = (a[0] as u128) * (b0 as u128)
        + (a[1] as u128) * (s2 as u128)
        + (a[2] as u128) * (s1 as u128);
    let mut d1 = (a[0] as u128) * (b1 as u128)
        + (a[1] as u128) * (b0 as u128)
        + (a[2] as u128) * (s2 as u128);
    let mut d2 = (a[0] as u128) * (b2 as u128)
        + (a[1] as u128) * (b1 as u128)
        + (a[2] as u128) * (b0 as u128);

    d1 += d0 >> 44;
    let mut h0 = (d0 as u64) & MASK44;
    d2 += d1 >> 44;
    let h1 = (d1 as u64) & MASK44;
    let carry = (d2 >> 42) as u64;
    let h2 = (d2 as u64) & MASK42;
    h0 += carry * 5;
    let carry = h0 >> 44;
    h0 &= MASK44;

    [h0, h1 + carry, h2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 section 2.5.2.
    #[test]
    fn rfc8439_vector() {
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 8439 appendix A.3 test vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(hex(&tag), "00000000000000000000000000000000");
    }

    // RFC 8439 appendix A.3 test vector #2: r = 0, s = text-dependent.
    #[test]
    fn appendix_a3_vector2() {
        let mut key = [0u8; 32];
        let s = unhex("36e5f6b5c5e06070f0efca96227a863e");
        key[16..].copy_from_slice(&s);
        let msg = b"Any submission to the IETF intended by the Contributor for publi\
cation as all or part of an IETF Internet-Draft or RFC and any statement made wit\
hin the context of an IETF activity is considered an \"IETF Contribution\". Such s\
tatements include oral statements in IETF sessions, as well as written and electr\
onic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, msg.as_slice());
        assert_eq!(hex(&tag), "36e5f6b5c5e06070f0efca96227a863e");
    }

    // RFC 8439 appendix A.3 test vector #3: the "IETF Contribution" text
    // under a nonzero r with zero s.
    #[test]
    fn appendix_a3_vector3() {
        let mut key = [0u8; 32];
        let r = unhex("36e5f6b5c5e06070f0efca96227a863e");
        key[..16].copy_from_slice(&r);
        let msg = b"Any submission to the IETF intended by the Contributor for publi\
cation as all or part of an IETF Internet-Draft or RFC and any statement made wit\
hin the context of an IETF activity is considered an \"IETF Contribution\". Such s\
tatements include oral statements in IETF sessions, as well as written and electr\
onic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, msg.as_slice());
        assert_eq!(hex(&tag), "f3477e7cd95417af89a6b8794c310cf0");
    }

    // RFC 8439 section 2.8.2's one-time key (derived in the AEAD tests)
    // exercises the near-2^130 accumulator range; appendix A.3 vector 10
    // targets the carry chain explicitly.
    #[test]
    fn appendix_a3_vector10_carry_chain() {
        let mut key = [0u8; 32];
        let r = unhex("01000000000000000400000000000000");
        key[..16].copy_from_slice(&r);
        let msg = unhex(
            "e33594d7505e43b90000000000000000\
             3394d7505e4379cd0100000000000000\
             00000000000000000000000000000000\
             01000000000000000000000000000000",
        );
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(hex(&tag), "14000000000000005500000000000000");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let msg: Vec<u8> = (0..129).map(|i| (i * 3) as u8).collect();
        let oneshot = Poly1305::mac(&key, &msg);
        for split in [1usize, 15, 16, 17, 64, 128] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), oneshot, "split {split}");
        }
    }

    // Feeding 16 bytes per update call forces the one-block path for the
    // whole message; the one-shot call takes the two-block (r²) path for
    // every full pair. Equality across lengths straddling the pair
    // boundary pins the fused step to the sequential recurrence.
    #[test]
    fn pair_path_matches_single_block_path() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 13 + 5) as u8);
        for len in [16usize, 31, 32, 33, 47, 48, 64, 95, 96, 160, 321] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
            let paired = Poly1305::mac(&key, &msg);
            let mut single = Poly1305::new(&key);
            for chunk in msg.chunks(16) {
                single.update(chunk);
            }
            assert_eq!(single.finalize(), paired, "len {len}");
        }
    }

    #[test]
    fn tag_depends_on_message() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8 + 1);
        assert_ne!(Poly1305::mac(&key, b"a"), Poly1305::mac(&key, b"b"));
    }
}
