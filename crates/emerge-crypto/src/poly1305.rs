//! Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented with 26-bit limbs and 64-bit intermediate products, the
//! classic portable strategy. Verified against the RFC 8439 section 2.5.2
//! test vector.

/// Poly1305 key length (r || s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC state.
///
/// The key must never be reused across messages; in this crate each AEAD
/// invocation derives a fresh one-time key from ChaCha20 block 0.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// r, clamped, in five 26-bit limbs.
    r: [u32; 5],
    /// Accumulator in five 26-bit limbs.
    h: [u32; 5],
    /// s (the final addend), as four little-endian 32-bit words.
    s: [u32; 4],
    buffer: [u8; 16],
    buffered: usize,
}

impl Poly1305 {
    /// Creates a MAC from a 32-byte one-time key `(r || s)`.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per RFC 8439.
        let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);

        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];

        let s = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];

        Poly1305 {
            r,
            h: [0; 5],
            s,
            buffer: [0u8; 16],
            buffered: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let want = 16 - self.buffered;
            let take = want.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 16 {
                let block = self.buffer;
                self.process_block(&block, 1 << 24);
                self.buffered = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            let mut tmp = [0u8; 16];
            tmp.copy_from_slice(block);
            self.process_block(&tmp, 1 << 24);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the MAC and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            // Final partial block: append 0x01 then zero-pad, with no high bit.
            let mut block = [0u8; 16];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 1;
            self.process_block(&block, 0);
        }

        // Full carry propagation of h. Afterwards all limbs are < 2^26
        // except h[1], which may be exactly 2^26 (handled below).
        let mut h = self.h;
        let mut carry;
        carry = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] += carry;
        carry = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] += carry;
        carry = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] += carry;
        carry = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] += carry * 5;
        carry = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += carry;

        // Compute g = h + 5 - 2^130. The top bit of g4 (as a signed value)
        // tells us whether h < p; select constant-time with full-width masks
        // (poly1305-donna's strategy).
        let mut g = [0u32; 5];
        let mut c = 5u32;
        for i in 0..4 {
            let t = h[i] + c;
            g[i] = t & 0x03ff_ffff;
            c = t >> 26;
        }
        g[4] = (h[4] + c).wrapping_sub(1 << 26);
        // mask = all-ones if h >= p (select g), zero otherwise (select h).
        let mask = (g[4] >> 31).wrapping_sub(1);
        let select = |hv: u32, gv: u32| (hv & !mask) | (gv & mask);
        let f0 = select(h[0], g[0]);
        let f1 = select(h[1], g[1]);
        let f2 = select(h[2], g[2]);
        let f3 = select(h[3], g[3]);
        let f4 = select(h[4], g[4]);

        // Convert back to 4x u32 little-endian words (mod 2^128). If f1 is
        // exactly 2^26 its low 6 bits are zero, so the `f1 << 26` overflow
        // discards nothing.
        let mut words = [
            f0 | (f1 << 26),
            (f1 >> 6) | (f2 << 20),
            (f2 >> 12) | (f3 << 14),
            (f3 >> 18) | (f4 << 8),
        ];

        // Add s modulo 2^128.
        let mut carry64 = 0u64;
        for (word, &s) in words.iter_mut().zip(&self.s) {
            let t = *word as u64 + s as u64 + carry64;
            *word = t as u32;
            carry64 = t >> 32;
        }

        let mut tag = [0u8; TAG_LEN];
        for i in 0..4 {
            tag[4 * i..4 * i + 4].copy_from_slice(&words[i].to_le_bytes());
        }
        tag
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(message);
        p.finalize()
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        // h += message block (with the high bit per RFC 8439).
        self.h[0] += t0 & 0x03ff_ffff;
        self.h[1] += ((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff;
        self.h[2] += ((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff;
        self.h[3] += ((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff;
        self.h[4] += (t3 >> 8) | hibit;

        // h *= r (mod 2^130 - 5), schoolbook with 64-bit accumulators.
        let [r0, r1, r2, r3, r4] = self.r.map(|x| x as u64);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.h.map(|x| x as u64);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry reduction.
        let mut c;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d0 &= 0x03ff_ffff;
        d1 += c;
        c = d1 >> 26;
        d1 &= 0x03ff_ffff;
        d2 += c;
        c = d2 >> 26;
        d2 &= 0x03ff_ffff;
        d3 += c;
        c = d3 >> 26;
        d3 &= 0x03ff_ffff;
        d4 += c;
        c = d4 >> 26;
        d4 &= 0x03ff_ffff;
        d0 += c * 5;
        c = d0 >> 26;
        d0 &= 0x03ff_ffff;
        d1 += c;

        self.h = [d0 as u32, d1 as u32, d2 as u32, d3 as u32, d4 as u32];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 section 2.5.2.
    #[test]
    fn rfc8439_vector() {
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 8439 appendix A.3 test vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(hex(&tag), "00000000000000000000000000000000");
    }

    // RFC 8439 appendix A.3 test vector #2: r = 0, s = text-dependent.
    #[test]
    fn appendix_a3_vector2() {
        let mut key = [0u8; 32];
        let s = unhex("36e5f6b5c5e06070f0efca96227a863e");
        key[16..].copy_from_slice(&s);
        let msg = b"Any submission to the IETF intended by the Contributor for publi\
cation as all or part of an IETF Internet-Draft or RFC and any statement made wit\
hin the context of an IETF activity is considered an \"IETF Contribution\". Such s\
tatements include oral statements in IETF sessions, as well as written and electr\
onic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, msg.as_slice());
        assert_eq!(hex(&tag), "36e5f6b5c5e06070f0efca96227a863e");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let msg: Vec<u8> = (0..129).map(|i| (i * 3) as u8).collect();
        let oneshot = Poly1305::mac(&key, &msg);
        for split in [1usize, 15, 16, 17, 64, 128] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), oneshot, "split {split}");
        }
    }

    #[test]
    fn tag_depends_on_message() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8 + 1);
        assert_ne!(Poly1305::mac(&key, b"a"), Poly1305::mac(&key, b"b"));
    }
}
