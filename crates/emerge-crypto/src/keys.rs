//! Key material newtypes shared across the system.

use crate::hkdf::Hkdf;
use rand::{CryptoRng, RngCore};
use std::fmt;

/// Length of a symmetric key in bytes.
pub const KEY_LEN: usize = 32;

/// A 256-bit symmetric key.
///
/// Deliberately does not implement `Display`, and its `Debug` output is
/// redacted so keys do not leak into logs.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SymmetricKey([u8; KEY_LEN]);

impl SymmetricKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SymmetricKey(bytes)
    }

    /// Samples a fresh uniformly random key from `rng`.
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        SymmetricKey(bytes)
    }

    /// Derives a labelled sub-key via HKDF. Used to build the per-column
    /// onion keys and nonces from one sender seed.
    pub fn derive(&self, label: &[u8]) -> SymmetricKey {
        let hk = Hkdf::from_prk(self.0);
        SymmetricKey(hk.expand_key(label))
    }

    /// Derives a 12-byte nonce bound to `label`.
    ///
    /// Runs on every AEAD seal/open and onion peel, so the
    /// `label || "/nonce"` info string is composed on the stack for the
    /// short labels the schemes use (falling back to a heap concat only
    /// for oversized labels).
    pub fn derive_nonce(&self, label: &[u8]) -> [u8; 12] {
        const SUFFIX: &[u8] = b"/nonce";
        let hk = Hkdf::from_prk(self.0);
        let mut nonce = [0u8; 12];
        let mut info = [0u8; 64];
        if label.len() + SUFFIX.len() <= info.len() {
            info[..label.len()].copy_from_slice(label);
            info[label.len()..label.len() + SUFFIX.len()].copy_from_slice(SUFFIX);
            hk.expand_into(&info[..label.len() + SUFFIX.len()], &mut nonce);
        } else {
            hk.expand_into(&[label, SUFFIX].concat(), &mut nonce);
        }
        nonce
    }

    /// Views the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// Extracts the raw key bytes.
    pub fn into_bytes(self) -> [u8; KEY_LEN] {
        self.0
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymmetricKey(<redacted>)")
    }
}

impl From<[u8; KEY_LEN]> for SymmetricKey {
    fn from(bytes: [u8; KEY_LEN]) -> Self {
        SymmetricKey(bytes)
    }
}

/// One Shamir share of a secret, tagged with its evaluation index.
///
/// Index `x` must be non-zero (x = 0 would be the secret itself).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct KeyShare {
    /// Evaluation point in GF(256), 1..=255.
    pub index: u8,
    /// One byte of share data per byte of secret.
    pub data: Vec<u8>,
}

impl KeyShare {
    /// Creates a share from its parts.
    pub fn new(index: u8, data: Vec<u8>) -> Self {
        KeyShare { index, data }
    }

    /// The length of the underlying secret this share contributes to.
    pub fn secret_len(&self) -> usize {
        self.data.len()
    }
}

impl fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KeyShare {{ index: {}, data: <{} bytes redacted> }}",
            self.index,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn debug_redacts_key_material() {
        let key = SymmetricKey::from_bytes([0xAB; 32]);
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("ab"), "debug output leaked key bytes: {dbg}");
        let share = KeyShare::new(3, vec![0xCD; 8]);
        let dbg = format!("{share:?}");
        assert!(!dbg.contains("cd"), "debug output leaked share bytes");
        assert!(dbg.contains("index: 3"));
    }

    #[test]
    fn generate_is_seed_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(1234);
        let mut rng2 = StdRng::seed_from_u64(1234);
        assert_eq!(
            SymmetricKey::generate(&mut rng1).into_bytes(),
            SymmetricKey::generate(&mut rng2).into_bytes()
        );
    }

    #[test]
    fn derive_is_label_separated() {
        let key = SymmetricKey::from_bytes([7u8; 32]);
        assert_ne!(key.derive(b"a").into_bytes(), key.derive(b"b").into_bytes());
        assert_eq!(key.derive(b"a").into_bytes(), key.derive(b"a").into_bytes());
    }

    #[test]
    fn oversized_label_nonce_matches_heap_reference() {
        // Labels longer than the stack buffer take the concat fallback;
        // both paths must derive the same nonce as the plain HKDF expand.
        let key = SymmetricKey::from_bytes([7u8; 32]);
        for len in [1usize, 57, 58, 59, 100] {
            let label = vec![b'x'; len];
            let hk = Hkdf::from_prk(*key.as_bytes());
            let okm = hk.expand(&[label.as_slice(), b"/nonce"].concat(), 12);
            assert_eq!(&key.derive_nonce(&label)[..], &okm[..], "label len {len}");
        }
    }

    #[test]
    fn nonce_differs_from_key_derivation() {
        let key = SymmetricKey::from_bytes([7u8; 32]);
        let nonce = key.derive_nonce(b"column-1");
        let key2 = key.derive(b"column-1");
        assert_ne!(&key2.as_bytes()[..12], &nonce[..]);
    }
}
