//! # emerge-crypto
//!
//! From-scratch cryptographic substrate for the self-emerging data system
//! (Li & Palanisamy, ICDCS 2017).
//!
//! The paper treats its ciphers as ideal primitives; this crate supplies
//! concrete, dependency-free implementations so that the whole system can be
//! exercised end-to-end:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4)
//! * [`hmac`] — HMAC-SHA256 (RFC 2104)
//! * [`hkdf`] — HKDF (RFC 5869)
//! * [`chacha20`] — ChaCha20 stream cipher (RFC 8439)
//! * [`poly1305`] — Poly1305 one-time authenticator (RFC 8439)
//! * [`aead`] — ChaCha20-Poly1305 AEAD (RFC 8439)
//! * [`gf256`] — arithmetic in GF(2^8) with the AES polynomial
//! * [`shamir`] — Shamir `(m, n)` threshold secret sharing over GF(2^8)
//! * [`commitments`] — hash commitments making reconstruction robust to
//!   share pollution
//! * [`onion`] — the layered onion packaging used by the key-routing schemes
//! * [`wire`] — small length-prefixed serialization helpers
//!
//! Everything here is written for clarity and determinism first; it is more
//! than fast enough for the simulation workloads in this repository (see the
//! `crypto_bench` criterion bench for numbers).
//!
//! # Example
//!
//! ```
//! use emerge_crypto::aead::{seal, open};
//! use emerge_crypto::keys::SymmetricKey;
//!
//! # fn main() -> Result<(), emerge_crypto::CryptoError> {
//! let key = SymmetricKey::from_bytes([7u8; 32]);
//! let nonce = [0u8; 12];
//! let ct = seal(&key, &nonce, b"attack at dawn", b"header");
//! let pt = open(&key, &nonce, &ct, b"header")?;
//! assert_eq!(pt, b"attack at dawn");
//! # Ok(())
//! # }
//! ```

// Unsafe code is denied crate-wide; the only exemptions are the
// runtime-dispatched hardware kernels (`sha256::shani`, `gf256::gfni`,
// `chacha20::avx512`), which carry scoped `allow(unsafe_code)` and are
// each pinned bit-identical to their portable safe implementation by a
// property test.
#![deny(unsafe_code)]
// Inside those kernels, every unsafe operation must sit in an explicit
// `unsafe {}` block with its own `// SAFETY:` justification — an
// `unsafe fn` signature alone does not discharge the obligation.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod commitments;
pub mod error;
pub mod gf256;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod onion;
pub mod poly1305;
pub mod sha256;
pub mod shamir;
pub mod wire;

pub use error::CryptoError;
pub use keys::{KeyShare, SymmetricKey};
