//! HKDF key derivation (RFC 5869) built on HMAC-SHA256.
//!
//! The key-routing schemes derive all per-column onion keys, bundle keys and
//! nonces from a single sender seed through HKDF, which keeps package
//! generation deterministic given the seed (useful both for tests and for
//! reproducible simulations).
//!
//! ```
//! use emerge_crypto::hkdf::Hkdf;
//! let hk = Hkdf::extract(Some(b"salt"), b"input key material");
//! let okm = hk.expand(b"column-3-key", 32);
//! assert_eq!(okm.len(), 32);
//! ```

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// An HKDF pseudo-random key, ready for `expand` calls.
///
/// Construction absorbs the HMAC key pads once; every expand block then
/// clones that midstate instead of re-keying HMAC, which halves the
/// SHA-256 compressions of a 32-byte derive. Callers that derive many
/// labels from one seed (the package key schedule, holder-address
/// construction) should build one `Hkdf` and reuse it — each additional
/// derive costs only the two message compressions.
#[derive(Debug, Clone)]
pub struct Hkdf {
    /// The extracted pseudo-random key (kept for inspection/tests).
    prk: [u8; DIGEST_LEN],
    /// HMAC-SHA256 midstate keyed with the PRK (ipad/opad blocks already
    /// absorbed).
    mac: HmacSha256,
}

impl Hkdf {
    /// HKDF-Extract: derives a pseudo-random key from input keying material.
    ///
    /// A missing salt is treated as a string of zeros per RFC 5869.
    pub fn extract(salt: Option<&[u8]>, ikm: &[u8]) -> Self {
        let zeros = [0u8; DIGEST_LEN];
        let salt = salt.unwrap_or(&zeros);
        Hkdf::from_prk(hmac_sha256(salt, ikm))
    }

    /// The extracted pseudo-random key.
    pub fn prk(&self) -> &[u8; DIGEST_LEN] {
        &self.prk
    }

    /// Builds an `Hkdf` from an existing pseudo-random key (HKDF-Expand-only
    /// mode, for callers that already hold a uniformly random key).
    pub fn from_prk(prk: [u8; DIGEST_LEN]) -> Self {
        Hkdf {
            prk,
            mac: HmacSha256::new(&prk),
        }
    }

    /// HKDF-Expand: derives `len` bytes of output keying material bound to
    /// `info`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 255 * 32` (the RFC 5869 limit).
    pub fn expand(&self, info: &[u8], len: usize) -> Vec<u8> {
        let mut okm = vec![0u8; len];
        self.expand_into(info, &mut okm);
        okm
    }

    /// HKDF-Expand directly into `out`, with no heap allocation. Key and
    /// nonce derivations on the packaging hot path use this with stack
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() > 255 * 32` (the RFC 5869 limit).
    pub fn expand_into(&self, info: &[u8], out: &mut [u8]) {
        let len = out.len();
        // LINT-WAIVER(panic): documented # Panics contract: RFC 5869 caps expand output at 255 blocks
        assert!(
            len <= 255 * DIGEST_LEN,
            "HKDF-Expand output length {len} exceeds RFC 5869 limit"
        );
        let mut previous: Option<[u8; DIGEST_LEN]> = None;
        let mut counter = 1u8;
        let mut filled = 0;
        while filled < len {
            // LINT-WAIVER(alloc): HmacSha256 holds only fixed-size digest state, so clone is a stack copy
            let mut mac = self.mac.clone();
            if let Some(prev) = previous {
                mac.update(&prev);
            }
            mac.update(info);
            mac.update(&[counter]);
            let block = mac.finalize();
            let take = (len - filled).min(DIGEST_LEN);
            out[filled..filled + take].copy_from_slice(&block[..take]);
            filled += take;
            previous = Some(block);
            counter = counter.wrapping_add(1);
        }
    }

    /// Convenience: expand exactly 32 bytes into a fixed array.
    pub fn expand_key(&self, info: &[u8]) -> [u8; DIGEST_LEN] {
        let mut out = [0u8; DIGEST_LEN];
        self.expand_into(info, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let hk = Hkdf::extract(Some(&salt), &ikm);
        assert_eq!(
            hex(hk.prk()),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hk.expand(&info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let hk = Hkdf::extract(Some(b""), &ikm);
        let okm = hk.expand(b"", 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn none_salt_equals_zero_salt() {
        let zeros = [0u8; DIGEST_LEN];
        let a = Hkdf::extract(None, b"ikm").expand(b"i", 16);
        let b = Hkdf::extract(Some(&zeros), b"ikm").expand(b"i", 16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_info_different_output() {
        let hk = Hkdf::extract(Some(b"s"), b"ikm");
        assert_ne!(hk.expand(b"a", 32), hk.expand(b"b", 32));
    }

    #[test]
    fn long_output_is_prefix_consistent() {
        let hk = Hkdf::extract(Some(b"s"), b"ikm");
        let long = hk.expand(b"info", 100);
        let short = hk.expand(b"info", 32);
        assert_eq!(&long[..32], &short[..]);
    }

    #[test]
    #[should_panic(expected = "exceeds RFC 5869 limit")]
    fn expand_over_limit_panics() {
        let hk = Hkdf::extract(None, b"ikm");
        let _ = hk.expand(b"", 255 * DIGEST_LEN + 1);
    }
}
