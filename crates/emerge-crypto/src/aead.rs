//! ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8).
//!
//! This is the authenticated encryption used for every onion layer and for
//! the cloud-stored payload of a self-emerging message. Decryption is
//! all-or-nothing: any tampering with ciphertext or associated data yields
//! [`CryptoError::AuthenticationFailed`].
//!
//! ```
//! use emerge_crypto::aead::{seal, open};
//! use emerge_crypto::keys::SymmetricKey;
//!
//! # fn main() -> Result<(), emerge_crypto::CryptoError> {
//! let key = SymmetricKey::from_bytes([9u8; 32]);
//! let nonce = [1u8; 12];
//! let ct = seal(&key, &nonce, b"secret", b"aad");
//! assert_eq!(open(&key, &nonce, &ct, b"aad")?, b"secret");
//! assert!(open(&key, &nonce, &ct, b"tampered-aad").is_err());
//! # Ok(())
//! # }
//! ```

use crate::chacha20::{chacha20_block, ChaCha20, NONCE_LEN};
use crate::error::CryptoError;
use crate::hmac::verify_tag;
use crate::keys::SymmetricKey;
use crate::poly1305::{Poly1305, TAG_LEN};
use emerge_obs::metrics::CounterId;

/// Number of AEAD seal operations (any caller, this thread's collector).
pub static SEAL_CALLS: CounterId = CounterId::new("crypto.aead.seal.calls");
/// Total plaintext bytes sealed by AEAD operations.
pub static SEAL_BYTES: CounterId = CounterId::new("crypto.aead.seal.bytes");
/// Number of AEAD open operations (successful verifications only).
pub static OPEN_CALLS: CounterId = CounterId::new("crypto.aead.open.calls");
/// Total plaintext bytes recovered by AEAD open operations.
pub static OPEN_BYTES: CounterId = CounterId::new("crypto.aead.open.bytes");
/// Number of AEAD opens rejected (bad tag or truncated input).
pub static OPEN_REJECTS: CounterId = CounterId::new("crypto.aead.open.rejects");

/// The ciphertext expansion added by the authentication tag.
pub const OVERHEAD: usize = TAG_LEN;

/// Encrypts `plaintext` under `key`/`nonce`, authenticating `aad` as well.
///
/// Returns `ciphertext || 16-byte tag`.
pub fn seal(key: &SymmetricKey, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    // Reserve for the tag up front: `plaintext.to_vec()` sizes the buffer
    // exactly, so appending the tag later would reallocate and copy the
    // whole ciphertext again — measurable at the share scheme's
    // hundreds-of-KB-per-trial seal volume.
    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.extend_from_slice(plaintext);
    seal_in_place(key, nonce, &mut out, aad);
    out
}

/// Encrypts the plaintext already sitting in `buf` and appends the 16-byte
/// tag, leaving `buf` exactly as [`seal`] would have returned it.
///
/// The in-place form lets pooled callers reuse one buffer across trials:
/// once `buf`'s capacity covers `len + OVERHEAD` no allocation occurs.
pub fn seal_in_place(key: &SymmetricKey, nonce: &[u8; NONCE_LEN], buf: &mut Vec<u8>, aad: &[u8]) {
    SEAL_CALLS.incr();
    SEAL_BYTES.add(buf.len() as u64);
    ChaCha20::new(key.as_bytes(), nonce, 1).apply_keystream(buf);
    let tag = compute_tag(key, nonce, buf, aad);
    buf.extend_from_slice(&tag);
}

/// Decrypts and verifies `ciphertext` (as produced by [`seal`]).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if the input is shorter than the
/// tag, and [`CryptoError::AuthenticationFailed`] if verification fails.
pub fn open(
    key: &SymmetricKey,
    nonce: &[u8; NONCE_LEN],
    ciphertext: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < TAG_LEN {
        OPEN_REJECTS.incr();
        return Err(CryptoError::InvalidLength {
            context: "AEAD ciphertext",
            expected: TAG_LEN,
            actual: ciphertext.len(),
        });
    }
    let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
    let expected = compute_tag(key, nonce, body, aad);
    if !verify_tag(&expected, tag) {
        OPEN_REJECTS.incr();
        return Err(CryptoError::AuthenticationFailed);
    }
    let mut out = body.to_vec();
    ChaCha20::new(key.as_bytes(), nonce, 1).apply_keystream(&mut out);
    OPEN_CALLS.incr();
    OPEN_BYTES.add(out.len() as u64);
    Ok(out)
}

/// Verifies and decrypts the ciphertext sitting in `buf` in place,
/// truncating the tag, so `buf` ends up holding the plaintext.
///
/// Allocation-free counterpart of [`open`] for pooled buffers; the tag is
/// still verified *before* any decryption touches the bytes.
///
/// # Errors
///
/// Same contract as [`open`]. On error `buf` is left unmodified.
pub fn open_in_place(
    key: &SymmetricKey,
    nonce: &[u8; NONCE_LEN],
    buf: &mut Vec<u8>,
    aad: &[u8],
) -> Result<(), CryptoError> {
    if buf.len() < TAG_LEN {
        OPEN_REJECTS.incr();
        return Err(CryptoError::InvalidLength {
            context: "AEAD ciphertext",
            expected: TAG_LEN,
            actual: buf.len(),
        });
    }
    let body_len = buf.len() - TAG_LEN;
    let expected = compute_tag(key, nonce, &buf[..body_len], aad);
    if !verify_tag(&expected, &buf[body_len..]) {
        OPEN_REJECTS.incr();
        return Err(CryptoError::AuthenticationFailed);
    }
    buf.truncate(body_len);
    ChaCha20::new(key.as_bytes(), nonce, 1).apply_keystream(buf);
    OPEN_CALLS.incr();
    OPEN_BYTES.add(body_len as u64);
    Ok(())
}

/// RFC 8439 Poly1305 message framing: aad, ciphertext (both zero-padded to
/// 16 bytes) followed by their lengths as 64-bit little-endian integers.
fn compute_tag(
    key: &SymmetricKey,
    nonce: &[u8; NONCE_LEN],
    ciphertext: &[u8],
    aad: &[u8],
) -> [u8; TAG_LEN] {
    // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
    let block0 = chacha20_block(key.as_bytes(), nonce, 0);
    let mut otk = [0u8; 32];
    otk.copy_from_slice(&block0[..32]);

    let mut mac = Poly1305::new(&otk);
    let zeros = [0u8; 16];
    mac.update(aad);
    if !aad.len().is_multiple_of(16) {
        mac.update(&zeros[..16 - aad.len() % 16]);
    }
    mac.update(ciphertext);
    if !ciphertext.len().is_multiple_of(16) {
        mac.update(&zeros[..16 - ciphertext.len() % 16]);
    }
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 section 2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key_bytes: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let key = SymmetricKey::from_bytes(key_bytes);
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let sealed = seal(&key, &nonce, plaintext, &aad);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");

        let opened = open(&key, &nonce, &sealed, &aad).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = SymmetricKey::from_bytes([1u8; 32]);
        let nonce = [2u8; 12];
        let mut sealed = seal(&key, &nonce, b"payload", b"");
        sealed[0] ^= 0x01;
        assert_eq!(
            open(&key, &nonce, &sealed, b""),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn tampered_tag_rejected() {
        let key = SymmetricKey::from_bytes([1u8; 32]);
        let nonce = [2u8; 12];
        let mut sealed = seal(&key, &nonce, b"payload", b"");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(
            open(&key, &nonce, &sealed, b""),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let key = SymmetricKey::from_bytes([1u8; 32]);
        let wrong = SymmetricKey::from_bytes([2u8; 32]);
        let nonce = [0u8; 12];
        let sealed = seal(&key, &nonce, b"payload", b"aad");
        assert!(open(&wrong, &nonce, &sealed, b"aad").is_err());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let key = SymmetricKey::from_bytes([1u8; 32]);
        let sealed = seal(&key, &[0u8; 12], b"payload", b"");
        assert!(open(&key, &[1u8; 12], &sealed, b"").is_err());
    }

    #[test]
    fn truncated_input_is_length_error() {
        let key = SymmetricKey::from_bytes([1u8; 32]);
        let err = open(&key, &[0u8; 12], &[0u8; 5], b"").unwrap_err();
        assert!(matches!(err, CryptoError::InvalidLength { .. }));
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = SymmetricKey::from_bytes([1u8; 32]);
        let nonce = [0u8; 12];
        let sealed = seal(&key, &nonce, b"", b"just-aad");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, &sealed, b"just-aad").unwrap(), b"");
    }

    #[test]
    fn in_place_forms_match_allocating_forms() {
        let key = SymmetricKey::from_bytes([8u8; 32]);
        let nonce = [4u8; 12];
        for len in [0usize, 1, 15, 16, 17, 333, 4096] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 11 + 5) as u8).collect();
            let sealed = seal(&key, &nonce, &plain, b"aad");
            let mut buf = plain.clone();
            seal_in_place(&key, &nonce, &mut buf, b"aad");
            assert_eq!(buf, sealed);
            open_in_place(&key, &nonce, &mut buf, b"aad").unwrap();
            assert_eq!(buf, plain);
        }
        // A failed in-place open leaves the buffer untouched.
        let mut tampered = seal(&key, &nonce, b"payload", b"aad");
        tampered[0] ^= 1;
        let before = tampered.clone();
        assert_eq!(
            open_in_place(&key, &nonce, &mut tampered, b"aad"),
            Err(CryptoError::AuthenticationFailed)
        );
        assert_eq!(tampered, before);
    }

    #[test]
    fn large_payload_roundtrip() {
        let key = SymmetricKey::from_bytes([5u8; 32]);
        let nonce = [6u8; 12];
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let sealed = seal(&key, &nonce, &payload, b"big");
        assert_eq!(open(&key, &nonce, &sealed, b"big").unwrap(), payload);
    }
}
