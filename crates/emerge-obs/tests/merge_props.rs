//! Property tests for `MetricsSnapshot::merge`: associativity and
//! commutativity over synthetic snapshots with overlapping and disjoint
//! metric names — the algebra that licenses merging per-shard telemetry
//! in any tree order and still reproducing the serial totals.

use emerge_obs::metrics::{
    bucket_index, CounterSnap, GaugeSnap, HistogramSnap, MetricsSnapshot, HIST_BUCKETS,
};
use proptest::prelude::*;

/// A small name pool so random snapshots collide on names often (the
/// interesting merge case) but not always.
const NAMES: [&str; 5] = ["a.calls", "b.bytes", "c.depth", "d.lat", "e.release"];

/// Builds a deterministic synthetic snapshot from drawn raw material.
/// `picks` selects names from the pool; duplicates collapse (keep-first)
/// so the per-kind vectors stay sorted and name-unique like real
/// snapshots.
fn snapshot_from(picks: &[usize], values: &[u64]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (slot, (&pick, &v)) in picks.iter().zip(values.iter()).enumerate() {
        let name = NAMES[pick % NAMES.len()].to_string();
        match slot % 3 {
            0 => {
                if !snap.counters.iter().any(|c| c.name == name) {
                    snap.counters.push(CounterSnap { name, value: v });
                }
            }
            1 => {
                if !snap.gauges.iter().any(|g| g.name == name) {
                    let signed = v as i64;
                    snap.gauges.push(GaugeSnap {
                        name,
                        current: signed,
                        min: signed.min(0),
                        max: signed.max(0),
                        samples: 1 + v % 7,
                    });
                }
            }
            _ => {
                if !snap.histograms.iter().any(|h| h.name == name) {
                    let mut buckets = [0u64; HIST_BUCKETS];
                    buckets[bucket_index(v)] = 1;
                    buckets[bucket_index(v / 2)] += 1;
                    snap.histograms.push(HistogramSnap {
                        name,
                        count: 2,
                        sum: v.wrapping_add(v / 2),
                        min: v / 2,
                        max: v,
                        buckets,
                    });
                }
            }
        }
    }
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        picks in proptest::collection::vec(0usize..NAMES.len(), 0..12),
        values in proptest::collection::vec(0u64..u64::MAX, 12..13),
        picks_b in proptest::collection::vec(0usize..NAMES.len(), 0..12),
        values_b in proptest::collection::vec(0u64..u64::MAX, 12..13),
        picks_c in proptest::collection::vec(0usize..NAMES.len(), 0..12),
        values_c in proptest::collection::vec(0u64..u64::MAX, 12..13),
    ) {
        let a = snapshot_from(&picks, &values);
        let b = snapshot_from(&picks_b, &values_b);
        let c = snapshot_from(&picks_c, &values_c);

        // Associativity: (a + b) + c == a + (b + c).
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);

        // Commutativity: a + b == b + a.
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));

        // Identity: the empty snapshot is neutral on both sides.
        let empty = MetricsSnapshot::default();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    #[test]
    fn merge_totals_match_serial_sums(
        picks in proptest::collection::vec(0usize..NAMES.len(), 1..10),
        values in proptest::collection::vec(1u64..1_000_000, 10..11),
        split_names in proptest::collection::vec(0usize..NAMES.len(), 1..10),
        split_values in proptest::collection::vec(1u64..1_000_000, 10..11),
    ) {
        // Counters in particular must add exactly across shards.
        let a = snapshot_from(&picks, &values);
        let b = snapshot_from(&split_names, &split_values);
        let m = merged(&a, &b);
        for c in &m.counters {
            let expect = a.counter(&c.name).unwrap_or(0) + b.counter(&c.name).unwrap_or(0);
            prop_assert_eq!(c.value, expect);
        }
        for h in &m.histograms {
            let ca = a.histogram(&h.name).map_or(0, |x| x.count);
            let cb = b.histogram(&h.name).map_or(0, |x| x.count);
            prop_assert_eq!(h.count, ca + cb);
            let bucket_total: u64 = h.buckets.iter().sum();
            prop_assert_eq!(bucket_total, h.count);
        }
    }
}
