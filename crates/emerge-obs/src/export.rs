//! Cold-path renderers for [`MetricsSnapshot`]: a JSON object (checked
//! against `emerge_bench::report::validate_json` in the bench crate's
//! tests) and the Prometheus text exposition format.

use crate::metrics::{bucket_upper_bound, MetricsSnapshot};

/// Escapes a string for a JSON string literal (quotes, backslash,
/// control characters). Mirrors `emerge_bench::report::json_escape`;
/// duplicated here because this crate sits below the bench crate and
/// must stay dependency-free.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` so dotted
/// metric names become valid Prometheus metric names.
fn prometheus_name(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": { "crypto.seal.bytes": 663552 },
    ///   "gauges":   { "pool.slots": { "current": 3, "min": 0, "max": 8, "samples": 12 } },
    ///   "histograms": {
    ///     "trial.paths": { "count": 300, "sum": 91234, "min": 210, "max": 512,
    ///                       "mean": 304, "p50": 255, "p99": 511,
    ///                       "buckets": [[255, 120], [511, 180]] }
    ///   }
    /// }
    /// ```
    ///
    /// Histogram `buckets` list only the non-empty buckets as
    /// `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(&c.name), c.value));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"current\":{},\"min\":{},\"max\":{},\"samples\":{}}}",
                json_escape(&g.name),
                g.current,
                g.min,
                g.max,
                g.samples
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99)
            ));
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n != 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{},{}]", bucket_upper_bound(b), n));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (v0.0.4): counters and gauges as single samples, histograms as
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    /// Dots in metric names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = prometheus_name(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for g in &self.gauges {
            let name = prometheus_name(&g.name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.current));
        }
        for h in &self.histograms {
            let name = prometheus_name(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n != 0 {
                    cumulative = cumulative.wrapping_add(n);
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        bucket_upper_bound(b)
                    ));
                }
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::collector::{install, take, Collector};
    use crate::metrics::{CounterId, GaugeId, HistogramId};

    #[test]
    fn exports_cover_every_metric_kind() {
        static CALLS: CounterId = CounterId::new("test.export.calls");
        static LEVEL: GaugeId = GaugeId::new("test.export.level");
        static LAT: HistogramId = HistogramId::new("test.export.lat");
        assert!(install(Collector::new()).is_none());
        CALLS.add(7);
        LEVEL.set(-2);
        LAT.record(3);
        LAT.record(900);
        let snap = take().expect("collector installed").snapshot();

        let json = snap.to_json();
        assert!(json.contains("\"test.export.calls\":7"), "{json}");
        assert!(json.contains("\"current\":-2"), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("\"buckets\":[[3,1],[1023,1]]"), "{json}");

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE test_export_calls counter\ntest_export_calls 7\n"));
        assert!(prom.contains("test_export_level -2\n"));
        assert!(
            prom.contains("test_export_lat_bucket{le=\"1023\"} 2\n"),
            "{prom}"
        );
        assert!(prom.contains("test_export_lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(prom.contains("test_export_lat_sum 903\n"));
        assert!(prom.contains("test_export_lat_count 2\n"));
    }

    #[test]
    fn empty_snapshot_renders_valid_shells() {
        let snap = crate::metrics::MetricsSnapshot::default();
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(snap.to_prometheus(), "");
    }
}
