//! # emerge-obs — dependency-free observability for the emerge workspace
//!
//! An air-gapped stand-in for the `tracing`/`metrics` ecosystem, built
//! on three pillars:
//!
//! * **Metrics** ([`metrics`]): fixed-capacity counters, gauges, and
//!   log-bucketed histograms in a preallocated [`metrics::MetricsRegistry`].
//!   Steady-state recording is an index + array write — zero heap
//!   allocations — and cold-path [`metrics::MetricsSnapshot`]s merge with
//!   an associative, commutative `merge`, exactly like the Monte-Carlo
//!   engines' `Rate`/`Summary`, so per-shard telemetry combines into the
//!   serial totals bit for bit.
//! * **Tracing** ([`trace`]): RAII spans (`&'static str` names) timing
//!   into nanosecond histograms with per-span allocation counts and
//!   tracked-counter attribution, point events with `u64` fields, and a
//!   fixed-capacity ring-buffer sink with drop counting. The whole
//!   timing layer compiles out without the `trace` cargo feature.
//! * **Profiling hooks** ([`alloccount`], [`stopwatch`], [`export`]):
//!   a counting global allocator so spans can attribute heap
//!   allocations per phase, the shared bench stopwatch, and JSON /
//!   Prometheus renderers for snapshots.
//!
//! Recording routes through the thread-local [`collector::Collector`]:
//! install one per worker thread, record for free, snapshot and merge
//! afterwards. With no collector installed every recording call is an
//! inert no-op, so instrumented library code costs (almost) nothing in
//! un-instrumented runs.
//!
//! ```
//! use emerge_obs::collector::{self, Collector};
//! use emerge_obs::metrics::CounterId;
//! use emerge_obs::trace::{span, SpanId};
//!
//! static RESOLVES: CounterId = CounterId::new("dht.resolve");
//! static PHASE: SpanId = SpanId::new("trial.paths");
//!
//! collector::install(Collector::new());
//! {
//!     let _guard = span(&PHASE);
//!     RESOLVES.incr();
//! }
//! let snap = collector::take().map(|c| c.snapshot()).unwrap_or_default();
//! assert_eq!(snap.counter("dht.resolve"), Some(1));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloccount;
pub mod collector;
pub mod export;
pub mod metrics;
pub mod stopwatch;
pub mod trace;

pub use collector::Collector;
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot};
pub use stopwatch::Stopwatch;
pub use trace::{event, span, EventId, SpanId};
