//! Fixed-capacity, mergeable metrics: counters, gauges, and log-bucketed
//! latency histograms.
//!
//! The design goal is the same "sharded == serial" discipline as
//! `emerge_sim::metrics::{Rate, Summary}`: every metric lives in a
//! preallocated slot of a [`MetricsRegistry`], recording is a plain array
//! write (zero heap allocations in steady state), and the cold-path
//! [`MetricsSnapshot`] merges with an associative, commutative `merge`
//! so per-shard registries combine into exactly the serial totals.
//!
//! Metric handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) are
//! `static`s built from `&'static str` names. The slot index behind a
//! name is interned once into a global fixed-capacity table and cached
//! in the handle; two handles with equal names (even across crates)
//! resolve to the same slot, which is what lets e.g. the AEAD layer and
//! the package builder share one `crypto.seal.bytes` counter.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::collector;

/// Capacity of the counter intern table (workspace-wide distinct names).
pub const MAX_COUNTERS: usize = 64;
/// Capacity of the gauge intern table.
pub const MAX_GAUGES: usize = 16;
/// Capacity of the histogram intern table.
pub const MAX_HISTOGRAMS: usize = 24;
/// Histogram bucket count: bucket `b` holds values whose bit length is
/// `b` (bucket 0 holds only 0, bucket 64 tops out at `u64::MAX`).
pub const HIST_BUCKETS: usize = 65;

/// Sentinel cached-slot value meaning "intern table was full; metric is
/// dropped" (distinct from 0 = "not resolved yet"; live slots store
/// `index + 1`).
const SLOT_DROPPED: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct InternKey {
    name: &'static str,
    suffix: &'static str,
}

impl InternKey {
    fn full_name(self) -> String {
        let mut s = String::with_capacity(self.name.len() + self.suffix.len());
        s.push_str(self.name);
        s.push_str(self.suffix);
        s
    }
}

/// A fixed-capacity append-only name table. Interning compares by string
/// *content*, so two `static` ids declared in different crates with the
/// same name share a slot.
struct InternSpace<const N: usize> {
    keys: [Option<InternKey>; N],
    len: usize,
}

impl<const N: usize> InternSpace<N> {
    const fn new() -> Self {
        InternSpace {
            keys: [None; N],
            len: 0,
        }
    }

    fn intern(&mut self, key: InternKey) -> Option<u32> {
        for (i, k) in self.keys[..self.len].iter().enumerate() {
            if let Some(k) = k {
                if k.name == key.name && k.suffix == key.suffix {
                    return Some(i as u32);
                }
            }
        }
        if self.len == N {
            return None;
        }
        self.keys[self.len] = Some(key);
        self.len += 1;
        Some((self.len - 1) as u32)
    }

    fn key_at(&self, i: usize) -> Option<InternKey> {
        self.keys.get(i).copied().flatten()
    }
}

struct Interns {
    counters: InternSpace<MAX_COUNTERS>,
    gauges: InternSpace<MAX_GAUGES>,
    histograms: InternSpace<MAX_HISTOGRAMS>,
}

static INTERNS: Mutex<Interns> = Mutex::new(Interns {
    counters: InternSpace::new(),
    gauges: InternSpace::new(),
    histograms: InternSpace::new(),
});

fn interns() -> std::sync::MutexGuard<'static, Interns> {
    match INTERNS.lock() {
        Ok(guard) => guard,
        // A panic while holding the intern lock cannot leave the table in
        // a broken state (append-only array + len), so poisoning is safe
        // to ignore.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Resolves a handle's cached slot, interning the name on first use.
/// Returns `None` when the intern table for this metric kind is full
/// (the metric silently drops — recording never fails or allocates).
fn resolve_slot<const N: usize>(
    cached: &AtomicU32,
    key: InternKey,
    table: fn(&mut Interns) -> &mut InternSpace<N>,
) -> Option<usize> {
    match cached.load(Ordering::Relaxed) {
        0 => match table(&mut interns()).intern(key) {
            Some(idx) => {
                cached.store(idx + 1, Ordering::Relaxed);
                Some(idx as usize)
            }
            None => {
                cached.store(SLOT_DROPPED, Ordering::Relaxed);
                None
            }
        },
        SLOT_DROPPED => None,
        n => Some((n - 1) as usize),
    }
}

/// Handle for a monotonically increasing `u64` counter.
///
/// Declare as a `static`; recording requires an installed
/// [`collector::Collector`] on the current thread and is a no-op (never
/// an error, never an allocation) otherwise.
pub struct CounterId {
    name: &'static str,
    suffix: &'static str,
    cached: AtomicU32,
}

impl CounterId {
    /// A counter handle with the given name.
    pub const fn new(name: &'static str) -> Self {
        Self::suffixed(name, "")
    }

    /// A counter handle whose registry name is `name` + `suffix`
    /// (used by spans to derive e.g. `trial.paths.allocs` from a span
    /// name without runtime string formatting).
    pub const fn suffixed(name: &'static str, suffix: &'static str) -> Self {
        CounterId {
            name,
            suffix,
            cached: AtomicU32::new(0),
        }
    }

    fn slot(&self) -> Option<usize> {
        resolve_slot(
            &self.cached,
            InternKey {
                name: self.name,
                suffix: self.suffix,
            },
            |t| &mut t.counters,
        )
    }

    /// Adds `n` to the counter (wrapping).
    pub fn add(&self, n: u64) {
        collector::with_metrics(|reg| {
            if let Some(i) = self.slot() {
                reg.counters[i] = reg.counters[i].wrapping_add(n);
            }
        });
    }

    /// Adds 1 to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value in the installed collector (0 if none installed).
    pub fn value(&self) -> u64 {
        collector::with_metrics(|reg| self.slot().map_or(0, |i| reg.counters[i])).unwrap_or(0)
    }

    /// Reads the counter and resets it to zero in one step — the
    /// take-semantics that `emerge-core`'s seal-volume hook exposes as
    /// `take_sealed_byte_count`.
    pub fn take(&self) -> u64 {
        collector::with_metrics(|reg| {
            self.slot()
                .map_or(0, |i| std::mem::replace(&mut reg.counters[i], 0))
        })
        .unwrap_or(0)
    }
}

/// One gauge's registry cell: last-set value plus min/max/sample-count
/// so merged snapshots keep an honest envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct GaugeCell {
    pub(crate) current: i64,
    pub(crate) min: i64,
    pub(crate) max: i64,
    pub(crate) samples: u64,
}

impl GaugeCell {
    fn observe(&mut self, v: i64) {
        if self.samples == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.current = v;
        self.samples = self.samples.wrapping_add(1);
    }
}

/// Handle for an `i64` gauge (point-in-time level: queue depth, pool
/// occupancy). Tracks current/min/max/samples.
pub struct GaugeId {
    name: &'static str,
    cached: AtomicU32,
}

impl GaugeId {
    /// A gauge handle with the given name.
    pub const fn new(name: &'static str) -> Self {
        GaugeId {
            name,
            cached: AtomicU32::new(0),
        }
    }

    fn slot(&self) -> Option<usize> {
        resolve_slot(
            &self.cached,
            InternKey {
                name: self.name,
                suffix: "",
            },
            |t| &mut t.gauges,
        )
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        collector::with_metrics(|reg| {
            if let Some(i) = self.slot() {
                reg.gauges[i].observe(v);
            }
        });
    }

    /// Adjusts the gauge by `delta` from its current value.
    pub fn add(&self, delta: i64) {
        collector::with_metrics(|reg| {
            if let Some(i) = self.slot() {
                let next = reg.gauges[i].current.wrapping_add(delta);
                reg.gauges[i].observe(next);
            }
        });
    }

    /// Current value in the installed collector (0 if none installed).
    pub fn value(&self) -> i64 {
        collector::with_metrics(|reg| self.slot().map_or(0, |i| reg.gauges[i].current)).unwrap_or(0)
    }
}

/// One histogram's registry cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct HistCell {
    pub(crate) count: u64,
    pub(crate) sum: u64,
    pub(crate) min: u64,
    pub(crate) max: u64,
    pub(crate) buckets: [u64; HIST_BUCKETS],
}

impl HistCell {
    pub(crate) const EMPTY: HistCell = HistCell {
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
        buckets: [0; HIST_BUCKETS],
    };

    fn record(&mut self, v: u64) {
        self.count = self.count.wrapping_add(1);
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].wrapping_add(1);
    }
}

/// The bucket a value lands in: its bit length (0 for 0). Power-of-two
/// bucket edges keep recording branch-free and merging exact.
pub fn bucket_index(v: u64) -> usize {
    64 - v.leading_zeros() as usize
}

/// Inclusive upper bound of bucket `b` (`0`, then `2^b - 1`, saturating
/// at `u64::MAX` for the last bucket).
pub fn bucket_upper_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        64.. => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Handle for a log-bucketed `u64` histogram (latencies in nanoseconds,
/// sizes in bytes). Recording is an array write; quantiles are estimated
/// at export time from the bucket edges.
pub struct HistogramId {
    name: &'static str,
    cached: AtomicU32,
}

impl HistogramId {
    /// A histogram handle with the given name.
    pub const fn new(name: &'static str) -> Self {
        HistogramId {
            name,
            cached: AtomicU32::new(0),
        }
    }

    fn slot(&self) -> Option<usize> {
        resolve_slot(
            &self.cached,
            InternKey {
                name: self.name,
                suffix: "",
            },
            |t| &mut t.histograms,
        )
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        collector::with_metrics(|reg| {
            if let Some(i) = self.slot() {
                reg.histograms[i].record(v);
            }
        });
    }
}

/// The preallocated per-collector metric store. Every slot for every
/// internable name exists up front, so recording into any metric is an
/// index + array write with no allocation.
pub struct MetricsRegistry {
    pub(crate) counters: [u64; MAX_COUNTERS],
    pub(crate) gauges: [GaugeCell; MAX_GAUGES],
    pub(crate) histograms: [HistCell; MAX_HISTOGRAMS],
}

impl MetricsRegistry {
    /// A registry with every slot zeroed.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: [0; MAX_COUNTERS],
            gauges: [GaugeCell {
                current: 0,
                min: 0,
                max: 0,
                samples: 0,
            }; MAX_GAUGES],
            histograms: [HistCell::EMPTY; MAX_HISTOGRAMS],
        }
    }

    /// Zeroes every slot in place (no allocation, usable between
    /// measurement passes).
    pub fn clear(&mut self) {
        self.counters = [0; MAX_COUNTERS];
        self.gauges = [GaugeCell {
            current: 0,
            min: 0,
            max: 0,
            samples: 0,
        }; MAX_GAUGES];
        self.histograms = [HistCell::EMPTY; MAX_HISTOGRAMS];
    }

    /// A named, sorted, cold-path snapshot of every *touched* metric.
    /// Untouched slots are skipped so that a name interned on one shard
    /// but never recorded there does not perturb snapshot equality
    /// across shards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let interns = interns();
        let mut counters = Vec::new();
        for (i, &v) in self.counters.iter().enumerate() {
            if v != 0 {
                if let Some(key) = interns.counters.key_at(i) {
                    counters.push(CounterSnap {
                        name: key.full_name(),
                        value: v,
                    });
                }
            }
        }
        let mut gauges = Vec::new();
        for (i, g) in self.gauges.iter().enumerate() {
            if g.samples != 0 {
                if let Some(key) = interns.gauges.key_at(i) {
                    gauges.push(GaugeSnap {
                        name: key.full_name(),
                        current: g.current,
                        min: g.min,
                        max: g.max,
                        samples: g.samples,
                    });
                }
            }
        }
        let mut histograms = Vec::new();
        for (i, h) in self.histograms.iter().enumerate() {
            if h.count != 0 {
                if let Some(key) = interns.histograms.key_at(i) {
                    histograms.push(HistogramSnap {
                        name: key.full_name(),
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                        buckets: h.buckets,
                    });
                }
            }
        }
        drop(interns);
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// One counter in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnap {
    /// Full metric name (handle name + suffix).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSnap {
    /// Full metric name.
    pub name: String,
    /// Last value set. After a merge this is the *sum* of the shards'
    /// current values (fleet total), matching gauge semantics for
    /// capacity-style levels.
    pub current: i64,
    /// Minimum value ever set.
    pub min: i64,
    /// Maximum value ever set.
    pub max: i64,
    /// Number of `set`/`add` observations.
    pub samples: u64,
}

/// One histogram in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnap {
    /// Full metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts ([`bucket_index`] layout).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnap {
    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]` from the bucket
    /// edges: the upper bound of the bucket containing the `ceil(q *
    /// count)`-th observation, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper_bound(b).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// A named, sorted snapshot of metric state — the mergeable, exportable
/// cold-path view of a [`MetricsRegistry`].
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnap>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnap>,
}

/// Sorted merge-join of two name-sorted metric vectors: matching names
/// combine via `combine`, unmatched entries pass through. Keeping both
/// inputs sorted makes the operation associative and commutative as
/// long as `combine` itself is.
fn merge_by_name<T: Clone>(
    a: &[T],
    b: &[T],
    name_of: impl Fn(&T) -> &str,
    combine: impl Fn(&T, &T) -> T,
) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match name_of(&a[i]).cmp(name_of(&b[j])) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(combine(&a[i], &b[j]));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl MetricsSnapshot {
    /// Merges `other` into `self` with exact integer arithmetic:
    /// counters add (wrapping), gauge `current`/`samples` add with
    /// min/min and max/max envelopes, histograms add bucketwise. The
    /// operation is associative and commutative, so any merge tree over
    /// per-shard snapshots reproduces the serial snapshot exactly.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.counters = merge_by_name(
            &self.counters,
            &other.counters,
            |c| &c.name,
            |x, y| CounterSnap {
                name: x.name.clone(),
                value: x.value.wrapping_add(y.value),
            },
        );
        self.gauges = merge_by_name(
            &self.gauges,
            &other.gauges,
            |g| &g.name,
            |x, y| GaugeSnap {
                name: x.name.clone(),
                current: x.current.wrapping_add(y.current),
                min: x.min.min(y.min),
                max: x.max.max(y.max),
                samples: x.samples.wrapping_add(y.samples),
            },
        );
        self.histograms = merge_by_name(
            &self.histograms,
            &other.histograms,
            |h| &h.name,
            |x, y| {
                let mut buckets = x.buckets;
                for (dst, src) in buckets.iter_mut().zip(y.buckets.iter()) {
                    *dst = dst.wrapping_add(*src);
                }
                HistogramSnap {
                    name: x.name.clone(),
                    count: x.count.wrapping_add(y.count),
                    sum: x.sum.wrapping_add(y.sum),
                    min: x.min.min(y.min),
                    max: x.max.max(y.max),
                    buckets,
                }
            },
        );
    }

    /// True when no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter's value by full name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge by full name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnap> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Looks up a histogram by full name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{install, take, Collector};

    fn with_collector<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
        let prev = install(Collector::new());
        assert!(prev.is_none(), "metrics tests must not nest collectors");
        let r = f();
        let col = take().expect("collector still installed");
        (r, col.snapshot())
    }

    #[test]
    fn bucket_layout_is_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let ub = bucket_upper_bound(b);
            assert_eq!(
                bucket_index(ub),
                b,
                "upper bound of bucket {b} must land in it"
            );
            if b + 1 < HIST_BUCKETS {
                assert_eq!(bucket_index(ub + 1), b + 1);
            }
        }
    }

    #[test]
    fn counters_record_and_take() {
        static HITS: CounterId = CounterId::new("test.hits");
        // No collector installed: recording is a silent no-op.
        HITS.incr();
        assert_eq!(HITS.value(), 0);

        let ((), snap) = with_collector(|| {
            HITS.add(3);
            HITS.incr();
            assert_eq!(HITS.value(), 4);
            assert_eq!(HITS.take(), 4);
            assert_eq!(HITS.value(), 0);
            HITS.add(9);
        });
        assert_eq!(snap.counter("test.hits"), Some(9));
    }

    #[test]
    fn same_name_shares_a_slot_across_handles() {
        static A: CounterId = CounterId::new("test.shared");
        static B: CounterId = CounterId::new("test.shared");
        let ((), snap) = with_collector(|| {
            A.add(2);
            B.add(5);
        });
        assert_eq!(snap.counter("test.shared"), Some(7));
        assert_eq!(
            snap.counters
                .iter()
                .filter(|c| c.name == "test.shared")
                .count(),
            1
        );
    }

    #[test]
    fn gauges_track_envelope() {
        static DEPTH: GaugeId = GaugeId::new("test.depth");
        let ((), snap) = with_collector(|| {
            DEPTH.set(5);
            DEPTH.add(-8);
            DEPTH.set(2);
            assert_eq!(DEPTH.value(), 2);
        });
        let g = snap.gauge("test.depth").expect("gauge recorded");
        assert_eq!((g.current, g.min, g.max, g.samples), (2, -3, 5, 3));
    }

    #[test]
    fn histograms_bucket_and_summarize() {
        static LAT: HistogramId = HistogramId::new("test.lat");
        let ((), snap) = with_collector(|| {
            for v in [0u64, 1, 2, 3, 900, 1_000_000] {
                LAT.record(v);
            }
        });
        let h = snap.histogram("test.lat").expect("histogram recorded");
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1_000_906); // 0+1+2+3+900+1_000_000
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1_000_000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[bucket_index(900)], 1);
        assert_eq!(h.buckets[bucket_index(1_000_000)], 1);
        assert_eq!(h.mean(), (6 + 900 + 1_000_000) / 6);
        assert!(h.quantile(1.0) >= 1_000_000);
        assert!(h.quantile(0.5) <= bucket_upper_bound(bucket_index(900)));
    }

    #[test]
    fn snapshot_skips_untouched_metrics() {
        static TOUCHED: CounterId = CounterId::new("test.touched");
        static UNTOUCHED: CounterId = CounterId::new("test.untouched");
        let ((), snap) = with_collector(|| {
            TOUCHED.incr();
            // Resolve the second name's slot without recording to it.
            assert_eq!(UNTOUCHED.value(), 0);
        });
        assert_eq!(snap.counter("test.touched"), Some(1));
        assert_eq!(snap.counter("test.untouched"), None);
    }

    #[test]
    fn merge_is_exact_and_handles_disjoint_names() {
        let mk = |name: &str, value: u64| CounterSnap {
            name: name.to_string(),
            value,
        };
        let mut a = MetricsSnapshot {
            counters: vec![mk("a", 1), mk("c", 10)],
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            counters: vec![mk("b", 5), mk("c", 32)],
            ..MetricsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.counters, vec![mk("a", 1), mk("b", 5), mk("c", 42)]);
    }
}
