//! The one wall-clock helper the bench binaries share.
//!
//! Every `trials_per_sec` / `seconds` figure in the repo used to come
//! from its own `Instant::now()` pair; [`Stopwatch`] centralizes the
//! pattern so elapsed-time bookkeeping has a single source of truth.

use std::time::Instant;

/// A started wall-clock timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since the start (monotonic, fractional).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Nanoseconds elapsed since the start, saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Restarts the stopwatch and returns the seconds elapsed up to the
    /// restart — one lap of a repeated measurement loop.
    pub fn lap_secs(&mut self) -> f64 {
        let now = Instant::now();
        let secs = now.duration_since(self.started).as_secs_f64();
        self.started = now;
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let mut sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0 && b >= a);
        assert!(sw.elapsed_nanos() > 0 || sw.elapsed_secs() == 0.0);
        let lap = sw.lap_secs();
        assert!(lap >= 0.0);
        assert!(sw.elapsed_secs() <= lap + 1.0, "lap restarts the clock");
    }
}
