//! Lightweight span/event tracing with a ring-buffer sink.
//!
//! Spans time a scope (RAII guard) into a log-bucketed nanosecond
//! histogram, and additionally record the scope's heap-allocation count
//! (via [`crate::alloccount`], when the counting allocator is the
//! global allocator) and an optional *tracked counter* delta — the hook
//! that attributes e.g. `crypto.seal.bytes` to the package-build phase.
//!
//! Events are point occurrences: a `&'static str` name, up to
//! [`MAX_EVENT_FIELDS`] named `u64` fields, a per-event counter bump,
//! and (with a ring-equipped collector) an entry in the trace ring.
//! The ring is fixed-capacity and overwrites its oldest entry, counting
//! drops, so tracing never allocates or grows in steady state.
//!
//! Everything here arms only when a [`crate::collector::Collector`] is
//! installed on the current thread, and the timing/ring machinery
//! compiles out entirely without the `trace` cargo feature (leaving
//! `event` as a bare counter bump and [`span`] as an inert guard).

use crate::metrics::{CounterId, HistogramId};

#[cfg(feature = "trace")]
use crate::{alloccount, collector};
#[cfg(feature = "trace")]
use std::time::Instant;

/// Maximum named fields carried by one ring event; extra fields are
/// dropped (the fixed bound keeps ring slots allocation-free).
pub const MAX_EVENT_FIELDS: usize = 3;

/// Identity of a span: a static name plus the derived metric handles
/// (`<name>` nanosecond histogram, `<name>.calls` / `<name>.allocs`
/// counters, and optionally a tracked-counter delta routed to
/// `<name><dst_suffix>`). Declare as a `static` so slot caching is
/// shared by every use site.
// Without the `trace` feature only `name` is read; the metric handles
// stay so `SpanId::new` keeps one signature across both configurations.
#[cfg_attr(not(feature = "trace"), allow(dead_code))]
pub struct SpanId {
    name: &'static str,
    nanos: HistogramId,
    calls: CounterId,
    allocs: CounterId,
    tracked: Option<(&'static CounterId, CounterId)>,
}

impl SpanId {
    /// A span identity with the given static name.
    pub const fn new(name: &'static str) -> Self {
        SpanId {
            name,
            nanos: HistogramId::new(name),
            calls: CounterId::suffixed(name, ".calls"),
            allocs: CounterId::suffixed(name, ".allocs"),
            tracked: None,
        }
    }

    /// A span identity that additionally attributes the growth of `src`
    /// (a workspace counter such as `crypto.seal.bytes`) across the
    /// span's lifetime to the counter `<name><dst_suffix>`.
    pub const fn tracking(
        name: &'static str,
        src: &'static CounterId,
        dst_suffix: &'static str,
    ) -> Self {
        SpanId {
            name,
            nanos: HistogramId::new(name),
            calls: CounterId::suffixed(name, ".calls"),
            allocs: CounterId::suffixed(name, ".allocs"),
            tracked: Some((src, CounterId::suffixed(name, dst_suffix))),
        }
    }

    /// The span's static name.
    pub const fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(feature = "trace")]
struct SpanState {
    started: Instant,
    allocs0: u64,
    tracked0: u64,
}

/// RAII guard returned by [`span`]; records on drop. Inert (and
/// zero-cost at drop) when no collector was installed at entry.
pub struct Span {
    id: &'static SpanId,
    #[cfg(feature = "trace")]
    state: Option<SpanState>,
}

/// Enters a span: captures the clock, the thread's allocation count,
/// and the tracked counter's current value. The returned guard records
/// duration/allocs/tracked-delta and bumps `<name>.calls` when dropped.
///
/// With no collector installed (or without the `trace` feature) the
/// guard is inert: no clock read, nothing recorded.
#[cfg(feature = "trace")]
pub fn span(id: &'static SpanId) -> Span {
    if !collector::is_installed() {
        return Span { id, state: None };
    }
    ring_push(RingEntry::enter(id.name));
    let allocs0 = alloccount::allocations();
    let tracked0 = id.tracked.as_ref().map_or(0, |(src, _)| src.value());
    Span {
        id,
        state: Some(SpanState {
            started: Instant::now(),
            allocs0,
            tracked0,
        }),
    }
}

/// Feature-off stub: an inert guard, no clock reads, nothing recorded.
#[cfg(not(feature = "trace"))]
pub fn span(id: &'static SpanId) -> Span {
    Span { id }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(state) = self.state.take() {
            let nanos = u64::try_from(state.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.id.nanos.record(nanos);
            self.id.calls.incr();
            let allocs = alloccount::allocations().saturating_sub(state.allocs0);
            if allocs > 0 {
                self.id.allocs.add(allocs);
            }
            if let Some((src, dst)) = self.id.tracked.as_ref() {
                let delta = src.value().saturating_sub(state.tracked0);
                if delta > 0 {
                    dst.add(delta);
                }
            }
            ring_push(RingEntry::exit(self.id.name, nanos));
        }
        let _ = self.id;
    }
}

/// Identity of a point event: a static name and its occurrence counter.
pub struct EventId {
    name: &'static str,
    count: CounterId,
}

impl EventId {
    /// An event identity with the given static name (its occurrence
    /// counter is the name itself).
    pub const fn new(name: &'static str) -> Self {
        EventId {
            name,
            count: CounterId::new(name),
        }
    }

    /// The event's static name.
    pub const fn name(&self) -> &'static str {
        self.name
    }
}

/// Records one occurrence of `id`: bumps its counter always, and (with
/// the `trace` feature and a ring-equipped collector) appends a
/// timestamped ring entry carrying up to [`MAX_EVENT_FIELDS`] of
/// `fields` (extras are dropped, keeping the slot fixed-size).
pub fn event(id: &'static EventId, fields: &[(&'static str, u64)]) {
    id.count.incr();
    #[cfg(feature = "trace")]
    ring_push(RingEntry::event(id.name, fields));
    #[cfg(not(feature = "trace"))]
    let _ = fields;
}

/// What a ring entry records.
#[cfg(feature = "trace")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingEntryKind {
    /// Span entry.
    Enter,
    /// Span exit; `value` carries the span's duration in nanoseconds.
    Exit,
    /// Point event.
    Event,
}

/// One fixed-size slot in the trace ring.
#[cfg(feature = "trace")]
#[derive(Clone, Copy, Debug)]
pub struct RingEntry {
    /// Entry kind.
    pub kind: RingEntryKind,
    /// Static span/event name.
    pub name: &'static str,
    /// Kind-dependent value (span duration in nanoseconds for `Exit`,
    /// 0 otherwise).
    pub value: u64,
    /// Named fields (events only); `fields_len` of them are valid.
    pub fields: [(&'static str, u64); MAX_EVENT_FIELDS],
    /// Number of valid entries in `fields`.
    pub fields_len: usize,
}

#[cfg(feature = "trace")]
impl RingEntry {
    fn enter(name: &'static str) -> Self {
        RingEntry {
            kind: RingEntryKind::Enter,
            name,
            value: 0,
            fields: [("", 0); MAX_EVENT_FIELDS],
            fields_len: 0,
        }
    }

    fn exit(name: &'static str, nanos: u64) -> Self {
        RingEntry {
            kind: RingEntryKind::Exit,
            name,
            value: nanos,
            fields: [("", 0); MAX_EVENT_FIELDS],
            fields_len: 0,
        }
    }

    fn event(name: &'static str, raw: &[(&'static str, u64)]) -> Self {
        let mut fields = [("", 0); MAX_EVENT_FIELDS];
        let n = raw.len().min(MAX_EVENT_FIELDS);
        fields[..n].copy_from_slice(&raw[..n]);
        RingEntry {
            kind: RingEntryKind::Event,
            name,
            value: 0,
            fields,
            fields_len: n,
        }
    }

    /// The valid named fields of an event entry.
    pub fn fields(&self) -> &[(&'static str, u64)] {
        &self.fields[..self.fields_len]
    }
}

/// A fixed-capacity overwrite-oldest buffer of trace entries. Pushing
/// into a full ring evicts the oldest entry and increments the drop
/// count — the sink never grows.
#[cfg(feature = "trace")]
pub struct TraceRing {
    slots: Vec<Option<RingEntry>>,
    head: usize,
    len: usize,
    dropped: u64,
}

#[cfg(feature = "trace")]
impl TraceRing {
    /// A ring with `capacity` slots (clamped to at least 1),
    /// preallocated up front.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            slots: vec![None; capacity.max(1)],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, entry: RingEntry) {
        if self.len == self.slots.len() {
            self.dropped = self.dropped.wrapping_add(1);
        } else {
            self.len += 1;
        }
        self.slots[self.head] = Some(entry);
        self.head = (self.head + 1) % self.slots.len();
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many entries were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered entries, oldest first.
    pub fn entries(&self) -> Vec<RingEntry> {
        let cap = self.slots.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len)
            .filter_map(|i| self.slots[(start + i) % cap])
            .collect()
    }

    /// Empties the ring and resets the drop count (capacity retained).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }
}

#[cfg(feature = "trace")]
fn ring_push(entry: RingEntry) {
    collector::with_collector(|col| {
        if let Some(ring) = col.ring.as_mut() {
            ring.push(entry);
        }
    });
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::collector::{install, take, Collector};

    #[test]
    fn span_records_duration_and_calls() {
        static WORK: SpanId = SpanId::new("test.trace.work");
        assert!(install(Collector::new()).is_none());
        for _ in 0..3 {
            let _guard = span(&WORK);
            std::hint::black_box(17u64.wrapping_mul(31));
        }
        let snap = take().expect("collector installed").snapshot();
        let h = snap.histogram("test.trace.work").expect("span histogram");
        assert_eq!(h.count, 3);
        assert_eq!(snap.counter("test.trace.work.calls"), Some(3));
    }

    #[test]
    fn tracked_counter_delta_is_attributed() {
        static BYTES: CounterId = CounterId::new("test.trace.bytes");
        static SEALING: SpanId = SpanId::tracking("test.trace.sealing", &BYTES, ".bytes");
        assert!(install(Collector::new()).is_none());
        BYTES.add(100); // pre-span growth must not be attributed
        {
            let _guard = span(&SEALING);
            BYTES.add(42);
        }
        let snap = take().expect("collector installed").snapshot();
        assert_eq!(snap.counter("test.trace.sealing.bytes"), Some(42));
        assert_eq!(snap.counter("test.trace.bytes"), Some(142));
    }

    #[test]
    fn events_count_and_buffer_with_drops() {
        static RELEASE: EventId = EventId::new("test.trace.release");
        assert!(install(Collector::with_ring(4)).is_none());
        for i in 0..6u64 {
            event(
                &RELEASE,
                &[
                    ("holder", i),
                    ("block", 10 + i),
                    ("extra", 0),
                    ("dropped", 1),
                ],
            );
        }
        let col = take().expect("collector installed");
        assert_eq!(col.snapshot().counter("test.trace.release"), Some(6));
        let ring = col.ring().expect("ring-equipped collector");
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let entries = ring.entries();
        assert_eq!(entries.len(), 4);
        // Oldest first: pushes 2..=5 survive.
        assert_eq!(entries[0].fields()[0], ("holder", 2));
        assert_eq!(entries[3].fields()[0], ("holder", 5));
        // The 4th field fell off the fixed-size slot.
        assert_eq!(entries[0].fields().len(), MAX_EVENT_FIELDS);
    }

    #[test]
    fn span_without_collector_is_inert() {
        static IDLE: SpanId = SpanId::new("test.trace.idle");
        let guard = span(&IDLE);
        drop(guard); // must not panic or record anywhere
        assert!(install(Collector::new()).is_none());
        let snap = take().expect("collector installed").snapshot();
        assert!(snap.is_empty());
    }
}
