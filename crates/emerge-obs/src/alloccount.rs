//! A counting wrapper around the system allocator.
//!
//! Register [`CountingAllocator`] as the `#[global_allocator]` of a
//! binary or test to make [`allocations`] live: spans then attribute
//! per-phase heap-allocation counts, and allocation-discipline tests
//! can assert a steady-state count of zero. When some other global
//! allocator is in use the counter simply never moves and every
//! consumer sees deltas of 0.
//!
//! The count is *per thread* (a `const`-initialized `Cell`, so the
//! counting path itself never allocates or synchronizes): a worker
//! thread's spans observe only that worker's allocations, which is
//! exactly the shard-local attribution the profiling pipeline wants.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // No-Drop const-init cell: reachable from the allocator hook even
    // during thread teardown (`try_with` degrades to not-counting).
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_one() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// Number of heap allocations made by the *current thread* since it
/// started, when [`CountingAllocator`] is the global allocator
/// (otherwise constant 0). Reallocations count as one allocation;
/// frees are not counted.
pub fn allocations() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// A [`System`]-backed global allocator that counts allocations per
/// thread. Zero-sized unit type; register with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: emerge_obs::alloccount::CountingAllocator =
///     emerge_obs::alloccount::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract; the only addition is a thread-local counter
// bump, which neither allocates nor observes the pointers involved.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: the caller's layout obligations are forwarded to
        // `System::alloc` unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from this allocator's `alloc`
        // family, which delegated to `System`, so the pairing holds.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: the caller's layout obligations are forwarded to
        // `System::alloc_zeroed` unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: `ptr`/`layout` originate from this allocator (which
        // delegates to `System`), and `new_size` obligations pass to
        // `System::realloc` unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
