//! The per-thread collector that owns metric and trace state.
//!
//! Recording APIs ([`crate::metrics`], [`crate::trace`]) write into the
//! collector installed on the *current thread*; with no collector
//! installed every recording call is an inert no-op. This keeps the
//! sharded Monte-Carlo discipline intact: each worker thread installs
//! its own [`Collector`], records into private preallocated state with
//! no cross-thread synchronization, and the per-shard
//! [`MetricsSnapshot`]s merge exactly afterwards — telemetry shards the
//! same way results do.

use std::cell::RefCell;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
#[cfg(feature = "trace")]
use crate::trace::TraceRing;

/// Owns one thread's observability state: a preallocated
/// [`MetricsRegistry`] and (optionally, `trace` feature) a ring-buffer
/// trace sink.
pub struct Collector {
    pub(crate) metrics: MetricsRegistry,
    #[cfg(feature = "trace")]
    pub(crate) ring: Option<TraceRing>,
}

impl Collector {
    /// A collector with all metric slots preallocated and no trace ring.
    pub fn new() -> Self {
        Collector {
            metrics: MetricsRegistry::new(),
            #[cfg(feature = "trace")]
            ring: None,
        }
    }

    /// A collector that additionally buffers trace events in a ring of
    /// `capacity` slots (oldest events overwritten, with drop counting).
    #[cfg(feature = "trace")]
    pub fn with_ring(capacity: usize) -> Self {
        Collector {
            metrics: MetricsRegistry::new(),
            ring: Some(TraceRing::new(capacity)),
        }
    }

    /// Snapshot of every touched metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The trace ring, if this collector was built with one.
    #[cfg(feature = "trace")]
    pub fn ring(&self) -> Option<&TraceRing> {
        self.ring.as_ref()
    }

    /// Zeroes all metric state (and clears the ring) without
    /// deallocating, for reuse across measurement passes.
    pub fn clear(&mut self) {
        self.metrics.clear();
        #[cfg(feature = "trace")]
        if let Some(ring) = self.ring.as_mut() {
            ring.clear();
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs `collector` on the current thread, returning the previously
/// installed one (which the caller can later re-[`install`] to restore).
///
/// Must not be called from inside a recording callback (metric add,
/// span drop); doing so aborts via `RefCell`'s reborrow check.
pub fn install(collector: Collector) -> Option<Collector> {
    CURRENT.with(|c| c.borrow_mut().replace(collector))
}

/// Removes and returns the current thread's collector, if any.
pub fn take() -> Option<Collector> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// True when a collector is installed on this thread.
pub fn is_installed() -> bool {
    CURRENT.with(|c| c.try_borrow().is_ok_and(|b| b.is_some()))
}

/// Snapshot of the currently installed collector without removing it.
pub fn snapshot() -> Option<MetricsSnapshot> {
    CURRENT.with(|c| {
        c.try_borrow()
            .ok()
            .and_then(|b| b.as_ref().map(Collector::snapshot))
    })
}

/// Runs `f` against the installed collector's metrics. Returns `None`
/// (and skips `f`) when no collector is installed or the cell is
/// already borrowed (re-entrant recording, e.g. from an allocator hook);
/// recording must never fail, panic, or allocate.
pub(crate) fn with_metrics<R>(f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let mut b = c.try_borrow_mut().ok()?;
        b.as_mut().map(|col| f(&mut col.metrics))
    })
}

/// Runs `f` against the whole installed collector (metrics + ring).
#[cfg(feature = "trace")]
pub(crate) fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let mut b = c.try_borrow_mut().ok()?;
        b.as_mut().map(f)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_take_roundtrip() {
        assert!(!is_installed());
        assert!(install(Collector::new()).is_none());
        assert!(is_installed());
        // Installing again displaces (and returns) the previous collector.
        let displaced = install(Collector::new());
        assert!(displaced.is_some());
        assert!(take().is_some());
        assert!(take().is_none());
        assert!(!is_installed());
    }

    #[test]
    fn snapshot_without_collector_is_none() {
        assert!(snapshot().is_none());
    }
}
