//! Node-level RPC handling: the server side of the Kademlia protocol.
//!
//! [`NodeState`] owns one node's routing table and local store and
//! processes the four Kademlia RPCs, including the passive-learning rule
//! (every inbound message refreshes the sender's routing-table entry).
//! The overlay uses it for join flows and protocol-level tests; the
//! figure-scale experiments never need per-message processing.

use crate::id::NodeId;
use crate::rpc::{Request, Response};
use crate::storage::Store;
use crate::table::RoutingTable;
use emerge_sim::time::{SimDuration, SimTime};

/// One node's protocol state.
#[derive(Debug, Clone)]
pub struct NodeState {
    table: RoutingTable,
    store: Store,
    /// Default TTL applied to stored values (None = permanent).
    store_ttl: Option<SimDuration>,
    requests_served: u64,
}

impl NodeState {
    /// Creates a node with an empty table and store.
    pub fn new(id: NodeId, bucket_k: usize) -> Self {
        NodeState {
            table: RoutingTable::new(id, bucket_k),
            store: Store::new(),
            store_ttl: None,
            requests_served: 0,
        }
    }

    /// Sets the TTL for subsequently stored values.
    pub fn set_store_ttl(&mut self, ttl: Option<SimDuration>) {
        self.store_ttl = ttl;
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.table.owner()
    }

    /// Read access to the routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Mutable access to the routing table (used by bootstrap flows).
    pub fn table_mut(&mut self) -> &mut RoutingTable {
        &mut self.table
    }

    /// Read access to the local store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of requests this node has served.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Processes one inbound request, returning the response.
    ///
    /// Implements Kademlia's passive learning: the sender is offered to
    /// the routing table before the request is answered, so traffic keeps
    /// tables fresh without dedicated maintenance.
    pub fn handle(&mut self, from: NodeId, request: &Request, now: SimTime) -> Response {
        self.requests_served += 1;
        self.table.insert(from, now, false);
        match request {
            Request::Ping => Response::Pong,
            Request::Store { key, value } => {
                self.store.put(*key, value.clone(), now, self.store_ttl);
                Response::StoreOk
            }
            Request::FindNode { target } => {
                Response::Nodes(self.table.closest(target, self.table.k()))
            }
            Request::FindValue { key } => match self.store.get(key, now) {
                Some(v) => Response::Value(v.value.clone()),
                None => Response::Nodes(self.table.closest(key, self.table.k())),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn node(name: &[u8]) -> NodeState {
        NodeState::new(NodeId::from_name(name), 8)
    }

    #[test]
    fn ping_pong() {
        let mut n = node(b"server");
        let resp = n.handle(NodeId::from_name(b"client"), &Request::Ping, t(0));
        assert_eq!(resp, Response::Pong);
        assert_eq!(n.requests_served(), 1);
    }

    #[test]
    fn passive_learning_fills_the_table() {
        let mut n = node(b"server");
        assert!(n.table().is_empty());
        for i in 0..5u8 {
            n.handle(NodeId::from_name(&[i]), &Request::Ping, t(i as u64));
        }
        assert_eq!(n.table().len(), 5);
    }

    #[test]
    fn store_and_find_value() {
        let mut n = node(b"server");
        let key = NodeId::from_name(b"key");
        let resp = n.handle(
            NodeId::from_name(b"writer"),
            &Request::Store {
                key,
                value: b"v".to_vec(),
            },
            t(1),
        );
        assert_eq!(resp, Response::StoreOk);
        let resp = n.handle(
            NodeId::from_name(b"reader"),
            &Request::FindValue { key },
            t(2),
        );
        assert_eq!(resp, Response::Value(b"v".to_vec()));
    }

    #[test]
    fn find_value_miss_returns_contacts() {
        let mut n = node(b"server");
        n.handle(NodeId::from_name(b"peer"), &Request::Ping, t(0));
        let resp = n.handle(
            NodeId::from_name(b"reader"),
            &Request::FindValue {
                key: NodeId::from_name(b"missing"),
            },
            t(1),
        );
        match resp {
            Response::Nodes(contacts) => assert!(!contacts.is_empty()),
            other => panic!("expected contacts, got {other:?}"),
        }
    }

    #[test]
    fn find_node_returns_closest_known() {
        let mut n = node(b"server");
        let ids: Vec<NodeId> = (0..20u8).map(|i| NodeId::from_name(&[i, 1])).collect();
        for id in &ids {
            n.handle(*id, &Request::Ping, t(0));
        }
        let target = NodeId::from_name(b"target");
        let resp = n.handle(
            NodeId::from_name(b"asker"),
            &Request::FindNode { target },
            t(1),
        );
        let Response::Nodes(contacts) = resp else {
            panic!("expected nodes");
        };
        assert!(contacts.len() <= 8);
        for w in contacts.windows(2) {
            assert!(w[0].distance(&target) <= w[1].distance(&target));
        }
    }

    #[test]
    fn stored_values_respect_ttl() {
        let mut n = node(b"server");
        n.set_store_ttl(Some(SimDuration::from_ticks(10)));
        let key = NodeId::from_name(b"k");
        n.handle(
            NodeId::from_name(b"w"),
            &Request::Store {
                key,
                value: vec![1],
            },
            t(0),
        );
        match n.handle(NodeId::from_name(b"r"), &Request::FindValue { key }, t(5)) {
            Response::Value(_) => {}
            other => panic!("expected hit before ttl, got {other:?}"),
        }
        match n.handle(NodeId::from_name(b"r"), &Request::FindValue { key }, t(11)) {
            Response::Nodes(_) => {}
            other => panic!("expected miss after ttl, got {other:?}"),
        }
    }
}
