//! Per-node key-value storage with expiry.
//!
//! Each DHT node stores values it is responsible for. Values carry a TTL so
//! that key packages disappear after the emerging period instead of
//! lingering forever — the paper's holders keep a package for one holding
//! period only.

use crate::id::NodeId;
use emerge_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A stored value with its metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredValue {
    /// The value bytes.
    pub value: Vec<u8>,
    /// When the value was stored.
    pub stored_at: SimTime,
    /// Time-to-live; `None` means no expiry.
    pub ttl: Option<SimDuration>,
}

impl StoredValue {
    /// Whether the value has expired by `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        match self.ttl {
            Some(ttl) => now > self.stored_at + ttl,
            None => false,
        }
    }
}

/// A node-local store.
#[derive(Debug, Clone, Default)]
pub struct Store {
    entries: HashMap<NodeId, StoredValue>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Inserts (or replaces) a value.
    pub fn put(&mut self, key: NodeId, value: Vec<u8>, now: SimTime, ttl: Option<SimDuration>) {
        self.entries.insert(
            key,
            StoredValue {
                value,
                stored_at: now,
                ttl,
            },
        );
    }

    /// Fetches a live value.
    pub fn get(&self, key: &NodeId, now: SimTime) -> Option<&StoredValue> {
        self.entries.get(key).filter(|v| !v.expired(now))
    }

    /// Removes a value, returning it if present.
    pub fn remove(&mut self, key: &NodeId) -> Option<StoredValue> {
        self.entries.remove(key)
    }

    /// Drops all expired entries, returning how many were removed.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, v| !v.expired(now));
        before - self.entries.len()
    }

    /// Number of entries (including not-yet-purged expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates all live entries.
    pub fn iter_live(&self, now: SimTime) -> impl Iterator<Item = (&NodeId, &StoredValue)> {
        self.entries.iter().filter(move |(_, v)| !v.expired(now))
    }

    /// Drains the whole store (used when a dying node hands its data to a
    /// replacement via the replication mechanism).
    pub fn drain(&mut self) -> impl Iterator<Item = (NodeId, StoredValue)> + '_ {
        self.entries.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    fn key(name: &[u8]) -> NodeId {
        NodeId::from_name(name)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = Store::new();
        s.put(key(b"a"), b"v".to_vec(), t(0), None);
        assert_eq!(s.get(&key(b"a"), t(100)).unwrap().value, b"v");
        assert!(s.get(&key(b"b"), t(0)).is_none());
    }

    #[test]
    fn ttl_expiry() {
        let mut s = Store::new();
        s.put(key(b"a"), b"v".to_vec(), t(10), Some(d(5)));
        assert!(s.get(&key(b"a"), t(15)).is_some(), "at exactly ttl edge");
        assert!(s.get(&key(b"a"), t(16)).is_none(), "past ttl");
    }

    #[test]
    fn purge_removes_only_expired() {
        let mut s = Store::new();
        s.put(key(b"a"), vec![1], t(0), Some(d(10)));
        s.put(key(b"b"), vec![2], t(0), Some(d(100)));
        s.put(key(b"c"), vec![3], t(0), None);
        assert_eq!(s.purge_expired(t(50)), 1);
        assert_eq!(s.len(), 2);
        assert!(s.get(&key(b"b"), t(50)).is_some());
        assert!(s.get(&key(b"c"), t(50)).is_some());
    }

    #[test]
    fn replace_updates_value_and_clock() {
        let mut s = Store::new();
        s.put(key(b"a"), vec![1], t(0), Some(d(5)));
        s.put(key(b"a"), vec![2], t(10), Some(d(5)));
        let v = s.get(&key(b"a"), t(12)).unwrap();
        assert_eq!(v.value, vec![2]);
        assert_eq!(v.stored_at, t(10));
    }

    #[test]
    fn drain_hands_over_everything() {
        let mut s = Store::new();
        s.put(key(b"a"), vec![1], t(0), None);
        s.put(key(b"b"), vec![2], t(0), None);
        let drained: Vec<_> = s.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn iter_live_skips_expired() {
        let mut s = Store::new();
        s.put(key(b"a"), vec![1], t(0), Some(d(1)));
        s.put(key(b"b"), vec![2], t(0), None);
        let live: Vec<_> = s.iter_live(t(50)).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].1.value, vec![2]);
    }
}
