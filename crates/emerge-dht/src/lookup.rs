//! Iterative Kademlia lookup with α-way parallelism.
//!
//! The algorithm is expressed against a [`NodeQuery`] trait so it can be
//! unit-tested against synthetic topologies and reused by the overlay for
//! both `FIND_NODE` and `FIND_VALUE` flows.

use crate::id::{cmp_distance, NodeId};
use std::collections::HashSet;

/// Abstracts "ask node X for its closest contacts to T".
///
/// Implementations return `None` when the queried node is unreachable
/// (dead, offline, or the message was lost) — the lookup routes around it.
pub trait NodeQuery {
    /// Returns up to `count` contacts of `node` closest to `target`, or
    /// `None` if `node` does not respond.
    fn closest_of(&mut self, node: NodeId, target: NodeId, count: usize) -> Option<Vec<NodeId>>;
}

/// Statistics and results of one iterative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The k closest live contacts found, sorted closest-first.
    pub closest: Vec<NodeId>,
    /// Number of nodes queried (responses + timeouts).
    pub queried: usize,
    /// Number of nodes that failed to respond.
    pub timeouts: usize,
    /// Number of query rounds performed.
    pub rounds: usize,
}

/// Runs an iterative `FIND_NODE` toward `target`.
///
/// * `seeds` — initial candidates (typically from the caller's routing
///   table).
/// * `k` — result set size and per-query contact count.
/// * `alpha` — query parallelism per round.
///
/// Termination follows Kademlia: the lookup stops when a round fails to
/// improve the closest known contact and all of the current k closest have
/// been queried (or failed).
pub fn iterative_find_node(
    seeds: &[NodeId],
    target: NodeId,
    k: usize,
    alpha: usize,
    query: &mut impl NodeQuery,
) -> LookupOutcome {
    // LINT-WAIVER(panic): documented precondition on the Kademlia lookup parameters
    assert!(k > 0, "lookup needs k >= 1");
    // LINT-WAIVER(panic): documented precondition on the Kademlia lookup parameters
    assert!(alpha > 0, "lookup needs alpha >= 1");

    let mut shortlist: Vec<NodeId> = seeds.to_vec();
    shortlist.sort_by(|a, b| cmp_distance(a, b, &target));
    shortlist.dedup();

    let mut contacted: HashSet<NodeId> = HashSet::new();
    let mut responded: HashSet<NodeId> = HashSet::new();
    let mut queried = 0usize;
    let mut timeouts = 0usize;
    let mut rounds = 0usize;

    loop {
        // The frontier is the k closest candidates that are either already
        // confirmed (responded) or not yet tried. Unresponsive nodes fall
        // out; candidates beyond the frontier are never queried, which is
        // what bounds the query count to O(k + α·log n).
        let frontier: Vec<NodeId> = shortlist
            .iter()
            .filter(|id| responded.contains(*id) || !contacted.contains(*id))
            .take(k)
            .copied()
            .collect();
        let batch: Vec<NodeId> = frontier
            .iter()
            .filter(|id| !contacted.contains(*id))
            .take(alpha)
            .copied()
            .collect();
        if batch.is_empty() {
            break;
        }
        rounds += 1;

        for node in batch {
            contacted.insert(node);
            queried += 1;
            match query.closest_of(node, target, k) {
                Some(contacts) => {
                    responded.insert(node);
                    for c in contacts {
                        if !shortlist.contains(&c) {
                            shortlist.push(c);
                        }
                    }
                }
                None => {
                    timeouts += 1;
                    shortlist.retain(|id| *id != node);
                }
            }
        }

        shortlist.sort_by(|a, b| cmp_distance(a, b, &target));
    }

    let closest: Vec<NodeId> = shortlist
        .into_iter()
        .filter(|id| responded.contains(id))
        .take(k)
        .collect();

    LookupOutcome {
        closest,
        queried,
        timeouts,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::sort_by_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// A fully known synthetic network where every node knows `fanout`
    /// random peers plus its numeric neighbours.
    struct TestNet {
        tables: HashMap<NodeId, Vec<NodeId>>,
        dead: HashSet<NodeId>,
        queries: usize,
    }

    impl TestNet {
        fn build(n: usize, fanout: usize, seed: u64) -> (Self, Vec<NodeId>) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ids: Vec<NodeId> = (0..n).map(|_| NodeId::random(&mut rng)).collect();
            let mut tables = HashMap::new();
            for (i, id) in ids.iter().enumerate() {
                let mut known: Vec<NodeId> = Vec::new();
                // A ring link guarantees connectivity...
                known.push(ids[(i + 1) % n]);
                // ...plus `fanout` random long-range contacts (Kademlia-ish).
                for j in 0..fanout {
                    known.push(ids[(i * 7 + j * 13 + 1) % n]);
                }
                // And everyone knows their true closest peers, emulating
                // converged buckets near their own region.
                let mut near = ids.clone();
                sort_by_distance(&mut near, id);
                known.extend(near.iter().skip(1).take(4));
                known.dedup();
                tables.insert(*id, known);
            }
            (
                TestNet {
                    tables,
                    dead: HashSet::new(),
                    queries: 0,
                },
                ids,
            )
        }
    }

    impl NodeQuery for TestNet {
        fn closest_of(
            &mut self,
            node: NodeId,
            target: NodeId,
            count: usize,
        ) -> Option<Vec<NodeId>> {
            self.queries += 1;
            if self.dead.contains(&node) {
                return None;
            }
            // Tables deliberately keep stale (dead) contacts: real routing
            // tables do not learn of deaths instantly, so lookups must route
            // around unresponsive entries.
            let mut known = self.tables.get(&node)?.clone();
            sort_by_distance(&mut known, &target);
            known.truncate(count);
            Some(known)
        }
    }

    #[test]
    fn lookup_finds_the_globally_closest_node() {
        let (mut net, ids) = TestNet::build(200, 6, 1);
        let target = NodeId::from_name(b"needle");
        let mut truth = ids.clone();
        sort_by_distance(&mut truth, &target);

        let outcome = iterative_find_node(&ids[..3], target, 8, 3, &mut net);
        assert!(!outcome.closest.is_empty());
        assert_eq!(
            outcome.closest[0], truth[0],
            "lookup must converge to the true closest node"
        );
    }

    #[test]
    fn lookup_copes_with_dead_nodes() {
        let (mut net, ids) = TestNet::build(200, 6, 2);
        let target = NodeId::from_name(b"needle-2");
        let mut truth = ids.clone();
        sort_by_distance(&mut truth, &target);
        // Kill 25% of nodes, but not the true closest.
        for id in ids.iter().step_by(4) {
            if *id != truth[0] {
                net.dead.insert(*id);
            }
        }
        let seeds: Vec<NodeId> = ids
            .iter()
            .filter(|id| !net.dead.contains(*id))
            .take(3)
            .copied()
            .collect();
        let outcome = iterative_find_node(&seeds, target, 8, 3, &mut net);
        assert_eq!(outcome.closest[0], truth[0]);
        assert!(outcome.timeouts > 0, "should have hit dead nodes");
        for id in &outcome.closest {
            assert!(!net.dead.contains(id), "results must be live nodes");
        }
    }

    #[test]
    fn lookup_terminates_on_fully_dead_seeds() {
        let (mut net, ids) = TestNet::build(50, 4, 3);
        for id in &ids {
            net.dead.insert(*id);
        }
        let outcome = iterative_find_node(&ids[..3], NodeId::ZERO, 8, 3, &mut net);
        assert!(outcome.closest.is_empty());
        assert_eq!(outcome.timeouts, outcome.queried);
    }

    #[test]
    fn query_count_is_sublinear() {
        let (mut net, ids) = TestNet::build(500, 8, 4);
        let target = NodeId::from_name(b"scalable");
        let outcome = iterative_find_node(&ids[..3], target, 8, 3, &mut net);
        assert!(
            outcome.queried < 120,
            "iterative lookup should not flood the network: {} queries",
            outcome.queried
        );
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let (mut net, ids) = TestNet::build(150, 6, 5);
        let target = NodeId::from_name(b"sorted");
        let outcome = iterative_find_node(&ids[..3], target, 10, 3, &mut net);
        for w in outcome.closest.windows(2) {
            assert!(w[0].distance(&target) <= w[1].distance(&target));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_panics() {
        let (mut net, ids) = TestNet::build(10, 2, 6);
        let _ = iterative_find_node(&ids[..1], NodeId::ZERO, 8, 0, &mut net);
    }
}
