//! # emerge-dht
//!
//! A Kademlia-style distributed hash table running on the [`emerge_sim`]
//! discrete-event engine. This crate replaces the paper's use of the
//! Overlay Weaver DHT emulator: it provides the node population, uniform
//! 160-bit ID space, XOR-metric routing, iterative lookups, storage with
//! replication, churn (exponential node lifetimes with generational
//! replacement) and adversarial node marking that the self-emerging
//! key-routing schemes in `emerge-core` are built upon.
//!
//! ## Layout
//!
//! * [`id`] — 160-bit node/key identifiers and the XOR distance metric
//! * [`bucket`] — k-buckets with least-recently-seen eviction
//! * [`table`] — per-node routing tables
//! * [`rpc`] — the four Kademlia RPCs and message envelopes
//! * [`node`] — the server side: RPC handling with passive learning
//! * [`lookup`] — iterative node/value lookup with α-way parallelism
//! * [`storage`] — TTL'd local key-value store
//! * [`network`] — latency and loss models, message accounting
//! * [`population`] — the churn-expanded node population shared by every
//!   substrate (generation timelines, malicious marking)
//! * [`overlay`] — the whole-network harness: population, churn
//!   generations, malicious marking, store/get, holder sampling
//! * [`analytic`] — the routing-free substrate for paper-scale
//!   Monte-Carlo sweeps (same population, `O(log² n)` holder resolution)
//!
//! ## Example
//!
//! ```
//! use emerge_dht::overlay::{Overlay, OverlayConfig};
//!
//! let config = OverlayConfig { n_nodes: 64, ..OverlayConfig::default() };
//! let mut overlay = Overlay::build(config, 42);
//! overlay.build_routing_tables();
//!
//! // Store a value and retrieve it through iterative lookup.
//! let key = emerge_dht::id::NodeId::from_name(b"the-key");
//! overlay.store(key, b"hello".to_vec());
//! let found = overlay.find_value(0, key).expect("value should be found");
//! assert_eq!(found.value, b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod bucket;
pub mod id;
pub mod index;
pub mod lookup;
pub mod network;
pub mod node;
pub mod overlay;
pub mod population;
pub mod rpc;
pub mod storage;
pub mod table;

pub use analytic::AnalyticSubstrate;
pub use id::NodeId;
pub use overlay::{Overlay, OverlayConfig};
pub use population::NodeInfo;
