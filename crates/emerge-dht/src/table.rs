//! Per-node Kademlia routing tables: 160 k-buckets indexed by the position
//! of the highest differing bit between the owner's ID and the contact's.

use crate::bucket::{Contact, InsertOutcome, KBucket, DEFAULT_K};
use crate::id::{cmp_distance, NodeId, ID_BITS};
use emerge_sim::time::SimTime;

/// A routing table owned by one node.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    owner: NodeId,
    k: usize,
    buckets: Vec<KBucket>,
}

impl RoutingTable {
    /// Creates an empty routing table for `owner` with bucket size `k`.
    pub fn new(owner: NodeId, k: usize) -> Self {
        RoutingTable {
            owner,
            k,
            buckets: (0..ID_BITS).map(|_| KBucket::new(k)).collect(),
        }
    }

    /// Creates a table with the default bucket size of 20.
    pub fn with_default_k(owner: NodeId) -> Self {
        Self::new(owner, DEFAULT_K)
    }

    /// The owning node's ID.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Bucket size parameter k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of contacts across all buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Whether the table contains no contacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers a contact (self-insertions are ignored).
    pub fn insert(&mut self, id: NodeId, now: SimTime, oldest_is_stale: bool) -> InsertOutcome {
        match self.owner.bucket_index(&id) {
            Some(idx) => self.buckets[idx].offer(id, now, oldest_is_stale),
            None => InsertOutcome::Full, // own ID: never stored
        }
    }

    /// Removes a contact, returning whether it was present.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        match self.owner.bucket_index(id) {
            Some(idx) => self.buckets[idx].remove(id),
            None => false,
        }
    }

    /// Whether the table knows this contact.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.owner
            .bucket_index(id)
            .is_some_and(|idx| self.buckets[idx].get(id).is_some())
    }

    /// Returns up to `count` known contacts closest to `target`, sorted by
    /// XOR distance (closest first).
    pub fn closest(&self, target: &NodeId, count: usize) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|c| c.id))
            .collect();
        all.sort_by(|a, b| cmp_distance(a, b, target));
        all.truncate(count);
        all
    }

    /// Iterates all contacts in bucket order.
    pub fn contacts(&self) -> impl Iterator<Item = &Contact> {
        self.buckets.iter().flat_map(|b| b.iter())
    }

    /// Number of non-empty buckets (a coarse health indicator).
    pub fn populated_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ID_LEN;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn random_ids(n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| NodeId::random(&mut rng)).collect()
    }

    #[test]
    fn own_id_is_never_stored() {
        let owner = NodeId::from_name(b"me");
        let mut rt = RoutingTable::new(owner, 4);
        rt.insert(owner, t(1), false);
        assert!(rt.is_empty());
        assert!(!rt.contains(&owner));
    }

    #[test]
    fn insert_and_lookup() {
        let owner = NodeId::from_name(b"me");
        let mut rt = RoutingTable::new(owner, 20);
        let ids = random_ids(100, 1);
        for (i, id) in ids.iter().enumerate() {
            rt.insert(*id, t(i as u64), false);
        }
        // Random IDs concentrate in the far buckets (half land in bucket
        // 159, a quarter in 158, ...), so the k-cap trims them: with k = 20
        // roughly 60-80 of 100 random contacts fit.
        assert!(
            (50..=100).contains(&rt.len()),
            "unexpected contact retention: {}",
            rt.len()
        );
        for id in ids.iter().take(10) {
            if rt.contains(id) {
                let closest = rt.closest(id, 1);
                assert_eq!(closest[0], *id, "known id should be its own closest");
            }
        }
    }

    #[test]
    fn closest_returns_sorted_by_distance() {
        let owner = NodeId::from_name(b"me");
        let mut rt = RoutingTable::new(owner, 20);
        for id in random_ids(200, 2) {
            rt.insert(id, t(0), false);
        }
        let target = NodeId::from_name(b"target");
        let closest = rt.closest(&target, 10);
        assert_eq!(closest.len(), 10);
        for w in closest.windows(2) {
            assert!(w[0].distance(&target) <= w[1].distance(&target));
        }
    }

    #[test]
    fn closest_respects_count_and_population() {
        let owner = NodeId::from_name(b"me");
        let mut rt = RoutingTable::new(owner, 20);
        for id in random_ids(5, 3) {
            rt.insert(id, t(0), false);
        }
        assert_eq!(rt.closest(&NodeId::ZERO, 10).len(), 5);
        assert_eq!(rt.closest(&NodeId::ZERO, 3).len(), 3);
    }

    #[test]
    fn buckets_bound_contacts_per_prefix() {
        // Fill with IDs that all share the same bucket relative to owner:
        // flip bit 0 of owner and randomize the tail -> all land in bucket 159.
        let owner = NodeId::ZERO;
        let mut rt = RoutingTable::new(owner, 8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut bytes = [0u8; ID_LEN];
            rng.fill(&mut bytes);
            bytes[0] |= 0x80; // ensure top bit set -> bucket 159 w.r.t. zero
            rt.insert(NodeId::from_bytes(bytes), t(0), false);
        }
        assert_eq!(rt.len(), 8, "one bucket must cap at k contacts");
    }

    #[test]
    fn remove_works() {
        let owner = NodeId::from_name(b"me");
        let mut rt = RoutingTable::new(owner, 20);
        let id = NodeId::from_name(b"peer");
        rt.insert(id, t(0), false);
        assert!(rt.contains(&id));
        assert!(rt.remove(&id));
        assert!(!rt.contains(&id));
        assert!(!rt.remove(&id));
    }

    #[test]
    fn populated_buckets_grows_with_contacts() {
        let owner = NodeId::from_name(b"me");
        let mut rt = RoutingTable::new(owner, 20);
        assert_eq!(rt.populated_buckets(), 0);
        for id in random_ids(64, 5) {
            rt.insert(id, t(0), false);
        }
        assert!(rt.populated_buckets() > 1);
    }
}
