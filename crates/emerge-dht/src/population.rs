//! The churn-expanded node population shared by every DHT substrate.
//!
//! Both the full simulated [`crate::overlay::Overlay`] and the lightweight
//! [`crate::analytic::AnalyticSubstrate`] need the same world: `n` slots,
//! each occupied by a succession of node generations with exponential
//! lifetimes and per-generation malicious draws. Building that world from
//! one shared [`Genesis`] guarantees the two substrates are
//! *bit-identical* populations — the property the substrate-parity test
//! suite pins down.
//!
//! The sampling scheme is part of the deterministic contract:
//!
//! * generation-0 IDs come from the `"node-ids"` stream in slot order,
//! * the exact-count malicious marking from `"malicious-marking"`,
//! * each slot's churn replacements (lifetime, replacement ID, replacement
//!   malicious draw) from that slot's own `"slot-churn"/slot` stream.
//!
//! Per-slot churn streams are what make churn timelines *independently
//! addressable*: a substrate can sample only the slots a protocol run
//! actually touches (the analytic substrate's lazy mode, ~30 of 10 000
//! per Monte-Carlo trial), and sharded Monte-Carlo workers (see
//! `emerge_core::montecarlo::run_protocol_trial_range`) sample disjoint
//! trial or slot ranges without replaying a global stream. Changing any
//! of this reseeds every world and breaks reproducibility tests.
//!
//! ## Interval convention
//!
//! Every time interval in this module is **half-open**: a generation is
//! the tenant over `[spawn, death)`, and the exposure helpers
//! ([`exposures_during`], [`any_malicious_exposure`],
//! [`first_malicious_exposure`]) take a half-open query window
//! `[from, to)`. A generation overlaps the window iff
//! `spawn < to && from < death`, so a generation dying exactly at `from`
//! and one spawning exactly at `to` are both excluded — at those instants
//! the slot belongs to the neighbouring generation, and a window's `to`
//! boundary belongs to the *next* window. This keeps
//! `exposures_during(gens, a, b) + exposures_during(gens, b, c)` double-
//! counting only the single generation (if any) that straddles `b`.

use crate::id::NodeId;
use emerge_sim::churn::LifetimeModel;
use emerge_sim::rng::SeedSource;
use emerge_sim::time::{SimDuration, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// One node generation occupying a slot for `[spawn, death)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node's DHT identifier.
    pub id: NodeId,
    /// Whether this node is adversary-controlled.
    pub malicious: bool,
    /// When this generation joined.
    pub spawn: SimTime,
    /// When this generation dies ([`SimTime::MAX`] if beyond the horizon).
    pub death: SimTime,
}

impl NodeInfo {
    /// Whether the generation is alive at `t`.
    pub fn alive_at(&self, t: SimTime) -> bool {
        self.spawn <= t && t < self.death
    }
}

/// Structural parameters of a population (the churn-relevant subset of
/// `OverlayConfig`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationConfig {
    /// Number of population slots (live nodes at any instant).
    pub n_nodes: usize,
    /// Fraction `p` of initially malicious nodes (marked exactly,
    /// `⌊p·n⌋` non-repeated nodes as in the paper's setup).
    pub malicious_fraction: f64,
    /// Mean node lifetime in ticks; `None` disables churn.
    pub mean_lifetime: Option<u64>,
    /// Horizon up to which churn generations are pre-sampled.
    pub horizon: u64,
}

/// The deterministic seed state of a population: generation-0 identities
/// and marking, from which any slot's full churn timeline can be sampled
/// independently (and therefore lazily).
#[derive(Debug, Clone)]
pub struct Genesis {
    config: PopulationConfig,
    seed: SeedSource,
    initial_ids: Vec<NodeId>,
    initial_malicious: Vec<bool>,
}

impl Genesis {
    /// Samples generation-0 identities and the exact-count malicious
    /// marking, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0` or `malicious_fraction ∉ [0, 1]`.
    pub fn sample(config: &PopulationConfig, seed: &SeedSource) -> Self {
        // LINT-WAIVER(panic): documented # Panics contract on the population configuration
        assert!(config.n_nodes > 0, "population needs at least one node");
        // LINT-WAIVER(panic): documented # Panics contract on the population configuration
        assert!(
            (0.0..=1.0).contains(&config.malicious_fraction),
            "malicious fraction must be in [0, 1]"
        );
        let n = config.n_nodes;
        let mut id_rng = seed.stream("node-ids");
        let initial_ids: Vec<NodeId> = (0..n).map(|_| NodeId::random(&mut id_rng)).collect();

        // Exact ⌊p·n⌋ malicious marking over generation 0.
        let mut mark_rng = seed.stream("malicious-marking");
        let malicious_count = (config.malicious_fraction * n as f64).floor() as usize;
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut mark_rng);
        let mut initial_malicious = vec![false; n];
        for &i in indices.iter().take(malicious_count) {
            initial_malicious[i] = true;
        }

        Genesis {
            config: *config,
            seed: *seed,
            initial_ids,
            initial_malicious,
        }
    }

    /// Number of population slots.
    pub fn n_nodes(&self) -> usize {
        self.initial_ids.len()
    }

    /// The population's structural parameters.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// The generation-0 ID of a slot.
    pub fn initial_id(&self, slot: usize) -> NodeId {
        self.initial_ids[slot]
    }

    /// All generation-0 IDs, in slot order.
    pub fn initial_ids(&self) -> &[NodeId] {
        &self.initial_ids
    }

    /// Whether slot `slot`'s generation-0 node is malicious.
    pub fn initial_malicious(&self, slot: usize) -> bool {
        self.initial_malicious[slot]
    }

    /// Count of initially malicious nodes (generation 0).
    pub fn initial_malicious_count(&self) -> usize {
        self.initial_malicious.iter().filter(|&&m| m).count()
    }

    /// Samples the full generation succession of one slot from its own
    /// `"slot-churn"` stream. Identical output every call; independent of
    /// every other slot.
    pub fn slot_generations(&self, slot: usize) -> Vec<NodeInfo> {
        let mut generations = Vec::with_capacity(1);
        self.slot_generations_into(slot, &mut generations);
        generations
    }

    /// [`slot_generations`](Self::slot_generations) into a caller-owned
    /// buffer (cleared first) — the form pooled trial loops use to recycle
    /// timeline storage across worlds without changing a single sampled
    /// byte.
    pub fn slot_generations_into(&self, slot: usize, out: &mut Vec<NodeInfo>) {
        out.clear();
        let lifetime = self
            .config
            .mean_lifetime
            .map(|m| LifetimeModel::new(SimDuration::from_ticks(m)));
        let horizon = SimTime::from_ticks(self.config.horizon);
        let mut churn_rng = self.seed.stream_n("slot-churn", slot as u64);

        let mut spawn = SimTime::ZERO;
        let mut gen_malicious = self.initial_malicious[slot];
        let mut gen_id = self.initial_ids[slot];
        loop {
            let death = match &lifetime {
                Some(model) => {
                    let life = model.sample_lifetime(&mut churn_rng);
                    let d = spawn + life;
                    if d >= horizon {
                        SimTime::MAX
                    } else {
                        d
                    }
                }
                None => SimTime::MAX,
            };
            out.push(NodeInfo {
                id: gen_id,
                malicious: gen_malicious,
                spawn,
                death,
            });
            if death == SimTime::MAX {
                break;
            }
            // Replacement node: fresh ID, independent malicious draw at
            // rate p (the paper: "the new node also has probability p to
            // be malicious").
            spawn = death;
            gen_id = NodeId::random(&mut churn_rng);
            gen_malicious = churn_rng.gen::<f64>() < self.config.malicious_fraction;
        }
    }

    /// Re-samples generation-0 state in place from a new `seed`, reusing
    /// the identity and marking buffers (and the caller's shuffle
    /// scratch). Bit-identical to [`Genesis::sample`] with the same
    /// config; the structural [`PopulationConfig`] is retained.
    pub fn resample(&mut self, seed: &SeedSource, shuffle_scratch: &mut Vec<usize>) {
        let n = self.config.n_nodes;
        self.seed = *seed;
        let mut id_rng = seed.stream("node-ids");
        self.initial_ids.clear();
        self.initial_ids
            .extend((0..n).map(|_| NodeId::random(&mut id_rng)));

        let mut mark_rng = seed.stream("malicious-marking");
        let malicious_count = (self.config.malicious_fraction * n as f64).floor() as usize;
        shuffle_scratch.clear();
        shuffle_scratch.extend(0..n);
        shuffle_scratch.shuffle(&mut mark_rng);
        self.initial_malicious.clear();
        self.initial_malicious.resize(n, false);
        for &i in shuffle_scratch.iter().take(malicious_count) {
            self.initial_malicious[i] = true;
        }
    }
}

/// Whether a generation's tenancy `[spawn, death)` overlaps the half-open
/// query window `[from, to)` — the single boundary convention every
/// exposure helper in this module follows (see the module docs).
fn overlaps_window(g: &NodeInfo, from: SimTime, to: SimTime) -> bool {
    g.spawn < to && from < g.death
}

/// The generation occupying the slot at time `t`.
///
/// Tenancies are half-open (`[spawn, death)`), so `t` belongs to exactly
/// one generation of a contiguous timeline. The immortal final generation
/// (`death == SimTime::MAX`) is additionally the tenant at
/// `t == SimTime::MAX`, which no half-open interval can contain.
///
/// # Panics
///
/// Panics if no generation's tenancy contains `t` — e.g. a hand-built,
/// non-contiguous timeline queried before its final generation's spawn
/// (historically this returned the immortal final generation, silently
/// reporting a tenant from the future).
pub fn tenant_at(generations: &[NodeInfo], t: SimTime) -> &NodeInfo {
    if let Some(g) = generations.iter().find(|g| g.alive_at(t)) {
        return g;
    }
    match generations.last() {
        Some(last) if last.death == SimTime::MAX && last.spawn <= t => last,
        // LINT-WAIVER(panic): documented contract: callers only query slots occupied at t
        _ => panic!("no generation occupies the slot at t = {t:?}"),
    }
}

/// Number of distinct generations whose tenancy overlaps the half-open
/// window `[from, to)` — the key **re-exposure count** used by the churn
/// analysis. An empty window (`from == to`) exposes nothing.
///
/// # Panics
///
/// Panics if `from > to`.
pub fn exposures_during(generations: &[NodeInfo], from: SimTime, to: SimTime) -> usize {
    // LINT-WAIVER(panic): documented # Panics contract: the window must be ordered
    assert!(from <= to);
    generations
        .iter()
        .filter(|g| overlaps_window(g, from, to))
        .count()
}

/// Whether any generation overlapping the half-open window `[from, to)`
/// is malicious.
pub fn any_malicious_exposure(generations: &[NodeInfo], from: SimTime, to: SimTime) -> bool {
    generations
        .iter()
        .any(|g| overlaps_window(g, from, to) && g.malicious)
}

/// The earliest instant in the half-open window `[from, to)` at which a
/// malicious tenant occupies the slot, if any.
pub fn first_malicious_exposure(
    generations: &[NodeInfo],
    from: SimTime,
    to: SimTime,
) -> Option<SimTime> {
    generations
        .iter()
        .filter(|g| g.malicious && overlaps_window(g, from, to))
        .map(|g| g.spawn.max(from))
        .min()
}

/// A fully materialized population: per-slot generation successions plus
/// the generation-0 ID index. This is what the full overlay consumes; the
/// analytic substrate keeps the [`Genesis`] and materializes slots on
/// demand instead.
#[derive(Debug, Clone)]
pub struct Population {
    /// `generations[slot]` is that slot's tenant succession, in time order.
    pub generations: Vec<Vec<NodeInfo>>,
    /// Generation-0 ID → slot index.
    pub id_index: HashMap<NodeId, usize>,
}

impl Population {
    /// Samples and materializes a whole population deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0` or `malicious_fraction ∉ [0, 1]`.
    pub fn build(config: &PopulationConfig, seed: &SeedSource) -> Self {
        let genesis = Genesis::sample(config, seed);
        let n = genesis.n_nodes();
        let generations: Vec<Vec<NodeInfo>> =
            (0..n).map(|slot| genesis.slot_generations(slot)).collect();
        let id_index = genesis
            .initial_ids()
            .iter()
            .enumerate()
            .map(|(slot, id)| (*id, slot))
            .collect();
        Population {
            generations,
            id_index,
        }
    }

    /// Number of population slots.
    pub fn n_nodes(&self) -> usize {
        self.generations.len()
    }

    /// The generation occupying `slot` at time `t`.
    pub fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        tenant_at(&self.generations[slot], t)
    }

    /// Number of distinct node generations whose tenancy overlaps the
    /// half-open window `[from, to)`.
    pub fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        exposures_during(&self.generations[slot], from, to)
    }

    /// Whether any generation of `slot` overlapping the half-open window
    /// `[from, to)` is malicious.
    pub fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        any_malicious_exposure(&self.generations[slot], from, to)
    }

    /// Count of initially malicious nodes (generation 0).
    pub fn initial_malicious_count(&self) -> usize {
        self.generations
            .iter()
            .filter(|gens| gens[0].malicious)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize) -> PopulationConfig {
        PopulationConfig {
            n_nodes: n,
            malicious_fraction: 0.0,
            mean_lifetime: None,
            horizon: 1_000_000,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let seed = SeedSource::new(7);
        let a = Population::build(&config(64), &seed);
        let b = Population::build(&config(64), &seed);
        assert_eq!(a.generations, b.generations);
    }

    #[test]
    fn exact_malicious_marking() {
        let cfg = PopulationConfig {
            malicious_fraction: 0.25,
            ..config(400)
        };
        let p = Population::build(&cfg, &SeedSource::new(3));
        assert_eq!(p.initial_malicious_count(), 100);
        let g = Genesis::sample(&cfg, &SeedSource::new(3));
        assert_eq!(g.initial_malicious_count(), 100);
    }

    #[test]
    fn churn_generations_are_contiguous() {
        let cfg = PopulationConfig {
            mean_lifetime: Some(500),
            horizon: 20_000,
            ..config(100)
        };
        let p = Population::build(&cfg, &SeedSource::new(5));
        for gens in &p.generations {
            for w in gens.windows(2) {
                assert_eq!(w[0].death, w[1].spawn);
            }
            assert_eq!(gens.last().unwrap().death, SimTime::MAX);
        }
    }

    #[test]
    fn id_index_maps_generation_zero() {
        let p = Population::build(&config(32), &SeedSource::new(9));
        for (slot, gens) in p.generations.iter().enumerate() {
            assert_eq!(p.id_index[&gens[0].id], slot);
        }
    }

    #[test]
    fn lazy_slot_sampling_matches_materialized_population() {
        let cfg = PopulationConfig {
            malicious_fraction: 0.3,
            mean_lifetime: Some(800),
            horizon: 30_000,
            ..config(50)
        };
        let seed = SeedSource::new(11);
        let genesis = Genesis::sample(&cfg, &seed);
        let population = Population::build(&cfg, &seed);
        // Sample out of order and repeatedly: identical timelines.
        for slot in [49usize, 0, 17, 17, 3] {
            assert_eq!(
                genesis.slot_generations(slot),
                population.generations[slot],
                "slot {slot}"
            );
        }
    }

    #[test]
    fn slot_streams_are_independent() {
        let cfg = PopulationConfig {
            mean_lifetime: Some(500),
            horizon: 50_000,
            ..config(20)
        };
        let genesis = Genesis::sample(&cfg, &SeedSource::new(13));
        // Two distinct churny slots must not share a timeline.
        let a = genesis.slot_generations(0);
        let b = genesis.slot_generations(1);
        assert_ne!(
            a.iter().map(|g| g.death).collect::<Vec<_>>(),
            b.iter().map(|g| g.death).collect::<Vec<_>>()
        );
    }

    /// An honest generation over `[0, 10)` followed by an immortal
    /// malicious one over `[10, ∞)`.
    fn two_generations() -> Vec<NodeInfo> {
        vec![
            NodeInfo {
                id: NodeId::from_name(b"a"),
                malicious: false,
                spawn: SimTime::ZERO,
                death: SimTime::from_ticks(10),
            },
            NodeInfo {
                id: NodeId::from_name(b"b"),
                malicious: true,
                spawn: SimTime::from_ticks(10),
                death: SimTime::MAX,
            },
        ]
    }

    #[test]
    fn tenant_helpers_agree_with_timeline() {
        let gens = two_generations();
        assert!(!tenant_at(&gens, SimTime::from_ticks(9)).malicious);
        assert!(tenant_at(&gens, SimTime::from_ticks(10)).malicious);
        // The window [0, 10) ends exactly where generation b spawns: only
        // generation a is exposed.
        assert_eq!(
            exposures_during(&gens, SimTime::ZERO, SimTime::from_ticks(10)),
            1
        );
        assert_eq!(
            exposures_during(&gens, SimTime::ZERO, SimTime::from_ticks(11)),
            2
        );
        assert!(!any_malicious_exposure(
            &gens,
            SimTime::ZERO,
            SimTime::from_ticks(10)
        ));
        assert!(any_malicious_exposure(
            &gens,
            SimTime::ZERO,
            SimTime::from_ticks(11)
        ));
    }

    #[test]
    fn exposure_boundaries_are_half_open_on_both_ends() {
        let gens = two_generations();
        let t10 = SimTime::from_ticks(10);
        // A generation dying exactly at `from` is excluded: at t = 10 the
        // slot already belongs to generation b.
        assert_eq!(exposures_during(&gens, t10, SimTime::from_ticks(20)), 1);
        assert!(any_malicious_exposure(&gens, t10, SimTime::from_ticks(20)));
        // A generation spawning exactly at `to` is excluded, symmetric to
        // the `from` side.
        assert_eq!(exposures_during(&gens, SimTime::from_ticks(5), t10), 1);
        assert!(!any_malicious_exposure(&gens, SimTime::from_ticks(5), t10));
        // Adjacent windows double-count only the straddling generation.
        let split = exposures_during(&gens, SimTime::ZERO, t10)
            + exposures_during(&gens, t10, SimTime::from_ticks(20));
        assert_eq!(
            split,
            exposures_during(&gens, SimTime::ZERO, SimTime::from_ticks(20))
        );
        // An empty window exposes nothing, even mid-tenancy.
        assert_eq!(exposures_during(&gens, t10, t10), 0);
        assert!(!any_malicious_exposure(&gens, t10, t10));
        assert_eq!(first_malicious_exposure(&gens, t10, t10), None);
    }

    #[test]
    fn first_malicious_exposure_clamps_to_window_start() {
        let gens = two_generations();
        // Malicious tenancy starts at 10; a window starting later reports
        // its own start, one starting earlier reports the spawn.
        assert_eq!(
            first_malicious_exposure(&gens, SimTime::from_ticks(15), SimTime::from_ticks(30)),
            Some(SimTime::from_ticks(15))
        );
        assert_eq!(
            first_malicious_exposure(&gens, SimTime::ZERO, SimTime::from_ticks(30)),
            Some(SimTime::from_ticks(10))
        );
        // Window ending exactly at the malicious spawn sees nothing.
        assert_eq!(
            first_malicious_exposure(&gens, SimTime::ZERO, SimTime::from_ticks(10)),
            None
        );
    }

    #[test]
    fn tenant_at_covers_the_immortal_tail_and_time_max() {
        let gens = two_generations();
        assert_eq!(tenant_at(&gens, SimTime::MAX).id, gens[1].id);
        assert_eq!(
            tenant_at(&gens, SimTime::from_ticks(1_000_000)).id,
            gens[1].id
        );
    }

    #[test]
    #[should_panic(expected = "no generation occupies the slot")]
    fn tenant_at_rejects_gaps_before_the_final_generation() {
        // A non-contiguous, hand-built timeline: nobody occupies [0, 10).
        let gens = vec![NodeInfo {
            id: NodeId::from_name(b"late"),
            malicious: false,
            spawn: SimTime::from_ticks(10),
            death: SimTime::MAX,
        }];
        let _ = tenant_at(&gens, SimTime::from_ticks(5));
    }

    #[test]
    fn genesis_timelines_have_a_tenant_at_every_instant() {
        let cfg = PopulationConfig {
            mean_lifetime: Some(300),
            horizon: 10_000,
            ..config(30)
        };
        let genesis = Genesis::sample(&cfg, &SeedSource::new(21));
        for slot in 0..30 {
            let gens = genesis.slot_generations(slot);
            for t in [0u64, 1, 299, 300, 9_999, 10_000, 50_000] {
                let tenant = tenant_at(&gens, SimTime::from_ticks(t));
                assert!(
                    tenant.spawn <= SimTime::from_ticks(t),
                    "tenant from the future at t={t}"
                );
            }
        }
    }
}
