//! A lightweight DHT substrate for paper-scale Monte-Carlo runs.
//!
//! [`AnalyticSubstrate`] carries the *same* deterministic population as
//! [`crate::overlay::Overlay`] (same generation-0 IDs, malicious marking
//! and churn timelines for a given `(OverlayConfig, seed)` pair — both
//! sample from [`crate::population::Genesis`]), but drops everything the
//! key-routing schemes do not need when measuring resilience:
//!
//! * **no routing tables** — holder addresses are resolved directly
//!   against a sorted ID index (bit-descent over the implicit binary
//!   trie), hundreds of times faster per resolution than the overlay's
//!   linear selection scan;
//! * **lazy churn** — each slot's generation timeline is sampled from its
//!   own per-slot stream only when first queried, so a Monte-Carlo trial
//!   that touches ~30 holders of a 10 000-node world never pays for the
//!   other 9 970 timelines;
//! * **no network model** — storage is an oracle: values land on the
//!   responsible slots instantly and lookups read them back directly.
//!
//! Because holder resolution is exact (the XOR-closest generation-0 ID)
//! and lazily sampled timelines are bit-identical to eagerly sampled ones,
//! every path plan, protocol run and emergence outcome matches the full
//! overlay bit for bit; `tests/substrate_parity.rs` in the workspace root
//! enforces this for all four schemes.

use crate::id::NodeId;
use crate::index::{IndexScratch, SortedIdIndex};
use crate::overlay::OverlayConfig;
use crate::population::{self, Genesis, NodeInfo};
use crate::storage::Store;
use emerge_obs::metrics::CounterId;
use emerge_sim::rng::SeedSource;
use emerge_sim::time::{SimDuration, SimTime};
use rand::Rng;
use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;

/// Holder resolutions served by the analytic substrate's sorted-ID
/// index (recorded into the thread's `emerge-obs` collector, if any).
static RESOLVES: CounterId = CounterId::new("dht.analytic.resolves");

/// The analytic (routing-free, lazily churned) DHT substrate.
#[derive(Debug)]
pub struct AnalyticSubstrate {
    config: OverlayConfig,
    seed: SeedSource,
    genesis: Genesis,
    /// Per-slot generation timelines, materialized on first access.
    timelines: Vec<OnceCell<Vec<NodeInfo>>>,
    /// Timeline buffers recovered by [`rebuild`](Self::rebuild), handed
    /// back out as later worlds materialize slots — the recycling that
    /// makes a warm rebuilt world allocation-free.
    timeline_pool: RefCell<Vec<Vec<NodeInfo>>>,
    /// The sorted generation-0 ID index behind closest-slot resolution
    /// (shared machinery with the full overlay).
    index: SortedIdIndex,
    /// Decoration scratch for warm index rebuilds.
    index_scratch: IndexScratch,
    /// Shuffle scratch for warm genesis re-marking.
    marking_scratch: Vec<usize>,
    /// Slot-local stores, created on first write.
    stores: HashMap<usize, Store>,
    now: SimTime,
}

impl AnalyticSubstrate {
    /// Builds the substrate deterministically from `seed`. The population
    /// is identical to `Overlay::build(config, seed)`'s.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0` or `malicious_fraction ∉ [0, 1]`.
    pub fn build(config: OverlayConfig, seed: u64) -> Self {
        let seed = SeedSource::new(seed);
        let genesis = Genesis::sample(&config.population(), &seed);
        let n = genesis.n_nodes();
        let index = SortedIdIndex::build(genesis.initial_ids());
        AnalyticSubstrate {
            config,
            seed,
            genesis,
            timelines: (0..n).map(|_| OnceCell::new()).collect(),
            timeline_pool: RefCell::new(Vec::new()),
            index,
            index_scratch: IndexScratch::default(),
            marking_scratch: Vec::new(),
            stores: HashMap::new(),
            now: SimTime::ZERO,
        }
    }

    /// Re-seeds the substrate in place: bit-identical observable state to
    /// `AnalyticSubstrate::build(config, seed)` with the retained config,
    /// but recycling every buffer the previous world owned — genesis
    /// identity/marking vectors, the sorted ID index (plus its sort
    /// scratch) and the materialized slot timelines, which return to a
    /// pool and are reissued as the new world's slots are first queried.
    /// After a warm-up world of the same shape, a rebuild plus a trial's
    /// worth of queries performs no heap allocation.
    pub fn rebuild(&mut self, seed: u64) {
        let seed = SeedSource::new(seed);
        self.seed = seed;
        self.genesis.resample(&seed, &mut self.marking_scratch);
        self.index
            .rebuild(self.genesis.initial_ids(), &mut self.index_scratch);
        let pool = self.timeline_pool.get_mut();
        for cell in &mut self.timelines {
            if let Some(buf) = cell.take() {
                pool.push(buf);
            }
        }
        self.stores.clear();
        self.now = SimTime::ZERO;
    }

    /// The configuration this substrate was built with.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// Number of population slots.
    pub fn n_nodes(&self) -> usize {
        self.genesis.n_nodes()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock (monotonic).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        // LINT-WAIVER(panic): documented # Panics contract: the substrate clock is monotone
        assert!(t >= self.now, "substrate clock cannot go backwards");
        self.now = t;
    }

    /// The initial (generation-0) node of a slot.
    pub fn initial(&self, slot: usize) -> &NodeInfo {
        &self.generations(slot)[0]
    }

    /// All generations of a slot, in order (sampled on first access into
    /// a pooled buffer when one is available).
    pub fn generations(&self, slot: usize) -> &[NodeInfo] {
        self.timelines[slot].get_or_init(|| {
            let mut buf = self.timeline_pool.borrow_mut().pop().unwrap_or_default();
            self.genesis.slot_generations_into(slot, &mut buf);
            buf
        })
    }

    /// How many slot timelines have been materialized so far (diagnostic
    /// for the laziness the Monte-Carlo engine relies on).
    pub fn materialized_timelines(&self) -> usize {
        self.timelines.iter().filter(|c| c.get().is_some()).count()
    }

    /// The generation occupying `slot` at time `t`.
    pub fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        population::tenant_at(self.generations(slot), t)
    }

    /// Number of generations whose tenancy overlaps the half-open window `[from, to)`.
    pub fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        population::exposures_during(self.generations(slot), from, to)
    }

    /// Whether any generation of `slot` overlapping the half-open window `[from, to)` is
    /// malicious.
    pub fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        population::any_malicious_exposure(self.generations(slot), from, to)
    }

    /// Count of initially malicious nodes (generation 0; no timeline
    /// sampling needed).
    pub fn initial_malicious_count(&self) -> usize {
        self.genesis.initial_malicious_count()
    }

    /// The seed source, for components that fork protocol-level streams.
    pub fn seed(&self) -> SeedSource {
        self.seed
    }

    /// The `count` slots whose generation-0 IDs are XOR-closest to
    /// `target`, closest first — identical output to
    /// `Overlay::closest_slots`, computed by descending the implicit
    /// binary trie over the sorted ID index.
    pub fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        self.index.closest_slots(target, count)
    }

    /// The slot responsible for `target` (XOR-closest generation-0 ID).
    pub fn resolve_holder(&self, target: &NodeId) -> usize {
        RESOLVES.incr();
        self.index.resolve(target)
    }

    /// Samples `count` distinct slots uniformly (same stream contract as
    /// `Overlay::sample_distinct_slots`).
    ///
    /// # Panics
    ///
    /// Panics if `count > n_nodes`.
    pub fn sample_distinct_slots<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        // LINT-WAIVER(panic): documented # Panics contract: cannot sample more slots than nodes
        assert!(
            count <= self.n_nodes(),
            "cannot sample more slots than exist"
        );
        rand::seq::index::sample(rng, self.n_nodes(), count).into_vec()
    }

    /// Stores `value` under `key` on the `replication` closest slots
    /// (oracle placement — no lookup traffic). Returns the slots written.
    pub fn store(&mut self, key: NodeId, value: Vec<u8>) -> Vec<usize> {
        self.store_with_ttl_opt(key, value, None)
    }

    /// Stores with a TTL.
    pub fn store_with_ttl(&mut self, key: NodeId, value: Vec<u8>, ttl: SimDuration) -> Vec<usize> {
        self.store_with_ttl_opt(key, value, Some(ttl))
    }

    fn store_with_ttl_opt(
        &mut self,
        key: NodeId,
        value: Vec<u8>,
        ttl: Option<SimDuration>,
    ) -> Vec<usize> {
        let targets = self.closest_slots(&key, self.config.replication);
        for &slot in &targets {
            self.stores
                .entry(slot)
                .or_default()
                .put(key, value.clone(), self.now, ttl);
        }
        targets
    }

    /// Reads a value back from the responsible slots (oracle lookup).
    pub fn find_value(&self, key: NodeId) -> Option<Vec<u8>> {
        let targets = self.closest_slots(&key, self.config.replication);
        for slot in targets {
            if let Some(v) = self
                .stores
                .get(&slot)
                .and_then(|store| store.get(&key, self.now))
            {
                return Some(v.value.clone());
            }
        }
        None
    }

    /// Direct access to a slot's local store (created on first use).
    pub fn store_of(&mut self, slot: usize) -> &mut Store {
        self.stores.entry(slot).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::sort_by_distance;
    use crate::overlay::Overlay;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(n: usize) -> OverlayConfig {
        OverlayConfig {
            n_nodes: n,
            ..OverlayConfig::default()
        }
    }

    #[test]
    fn population_matches_overlay_bit_for_bit() {
        let cfg = OverlayConfig {
            n_nodes: 200,
            malicious_fraction: 0.3,
            mean_lifetime: Some(2_000),
            horizon: 50_000,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(cfg, 42);
        let analytic = AnalyticSubstrate::build(cfg, 42);
        for slot in 0..200 {
            assert_eq!(overlay.generations(slot), analytic.generations(slot));
        }
        assert_eq!(
            overlay.initial_malicious_count(),
            analytic.initial_malicious_count()
        );
    }

    #[test]
    fn rebuild_matches_fresh_build_bit_for_bit() {
        let cfg = OverlayConfig {
            n_nodes: 300,
            malicious_fraction: 0.25,
            mean_lifetime: Some(1_500),
            horizon: 40_000,
            ..OverlayConfig::default()
        };
        let mut warm = AnalyticSubstrate::build(cfg, 100);
        // Materialize a spread of timelines and dirty the clock/stores so
        // the rebuild has real state to recycle.
        for slot in [0usize, 7, 42, 199, 299] {
            let _ = warm.generations(slot);
        }
        warm.advance_to(SimTime::from_ticks(123));
        warm.store(NodeId::from_name(b"k"), b"v".to_vec());

        for seed in [100u64, 7, 0xDEAD] {
            warm.rebuild(seed);
            let fresh = AnalyticSubstrate::build(cfg, seed);
            assert_eq!(warm.now(), SimTime::ZERO);
            assert_eq!(warm.materialized_timelines(), 0);
            assert_eq!(
                warm.initial_malicious_count(),
                fresh.initial_malicious_count(),
                "seed {seed}"
            );
            for i in 0..50 {
                let target = NodeId::from_name(format!("probe-{i}").as_bytes());
                assert_eq!(warm.resolve_holder(&target), fresh.resolve_holder(&target));
                assert_eq!(
                    warm.closest_slots(&target, 6),
                    fresh.closest_slots(&target, 6)
                );
            }
            // Query out of order so rebuilt worlds hand out pooled buffers.
            for slot in [299usize, 0, 42, 7, 150, 42] {
                assert_eq!(
                    warm.generations(slot),
                    fresh.generations(slot),
                    "slot {slot}"
                );
            }
            assert_eq!(warm.find_value(NodeId::from_name(b"k")), None);
        }
    }

    #[test]
    fn timelines_are_lazy() {
        let cfg = OverlayConfig {
            n_nodes: 1_000,
            mean_lifetime: Some(1_000),
            horizon: 100_000,
            ..OverlayConfig::default()
        };
        let sub = AnalyticSubstrate::build(cfg, 9);
        assert_eq!(sub.materialized_timelines(), 0);
        let target = NodeId::from_name(b"one-holder");
        let slot = sub.resolve_holder(&target);
        assert_eq!(sub.materialized_timelines(), 0, "resolution needs no churn");
        let _ = sub.generation_at(slot, SimTime::from_ticks(500));
        assert_eq!(sub.materialized_timelines(), 1);
    }

    #[test]
    fn closest_slots_matches_brute_force() {
        let sub = AnalyticSubstrate::build(config(300), 7);
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..50 {
            let target = if i % 5 == 0 {
                NodeId::random(&mut rng)
            } else {
                NodeId::from_name(format!("probe-{i}").as_bytes())
            };
            let got = sub.closest_slots(&target, 8);
            let mut ids: Vec<NodeId> = (0..300).map(|s| sub.initial(s).id).collect();
            sort_by_distance(&mut ids, &target);
            for (rank, slot) in got.iter().enumerate() {
                assert_eq!(
                    sub.initial(*slot).id,
                    ids[rank],
                    "rank {rank} of {target:?}"
                );
            }
        }
    }

    #[test]
    fn resolution_agrees_with_overlay() {
        let overlay = Overlay::build(config(500), 21);
        let sub = AnalyticSubstrate::build(config(500), 21);
        for i in 0..100 {
            let target = NodeId::from_name(format!("addr-{i}").as_bytes());
            assert_eq!(overlay.resolve_holder(&target), sub.resolve_holder(&target));
            assert_eq!(
                overlay.closest_slots(&target, 5),
                sub.closest_slots(&target, 5)
            );
        }
    }

    #[test]
    fn fast_resolve_matches_general_traversal() {
        let sub = AnalyticSubstrate::build(config(257), 13);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..200 {
            let target = if i % 3 == 0 {
                NodeId::random(&mut rng)
            } else {
                // Also probe exact member IDs (distance-zero hits).
                sub.initial(i % 257).id
            };
            assert_eq!(
                sub.resolve_holder(&target),
                sub.closest_slots(&target, 1)[0],
                "target {target:?}"
            );
        }
    }

    #[test]
    fn closest_slots_handles_edge_counts() {
        let sub = AnalyticSubstrate::build(config(16), 3);
        let target = NodeId::from_name(b"x");
        assert!(sub.closest_slots(&target, 0).is_empty());
        assert_eq!(sub.closest_slots(&target, 16).len(), 16);
        assert_eq!(sub.closest_slots(&target, 100).len(), 16);
    }

    #[test]
    fn store_and_find_roundtrip() {
        let mut sub = AnalyticSubstrate::build(config(64), 5);
        let key = NodeId::from_name(b"k");
        let written = sub.store(key, b"v".to_vec());
        assert_eq!(written.len(), sub.config().replication);
        assert_eq!(sub.find_value(key), Some(b"v".to_vec()));
        assert_eq!(sub.find_value(NodeId::from_name(b"missing")), None);
    }

    #[test]
    fn ttl_expires_values() {
        let mut sub = AnalyticSubstrate::build(config(64), 6);
        let key = NodeId::from_name(b"ttl");
        sub.store_with_ttl(key, b"v".to_vec(), SimDuration::from_ticks(10));
        assert!(sub.find_value(key).is_some());
        sub.advance_to(SimTime::from_ticks(11));
        assert!(sub.find_value(key).is_none());
    }

    #[test]
    fn clock_is_monotonic() {
        let mut sub = AnalyticSubstrate::build(config(8), 1);
        sub.advance_to(SimTime::from_ticks(5));
        assert_eq!(sub.now(), SimTime::from_ticks(5));
    }

    #[test]
    #[should_panic(expected = "cannot go backwards")]
    fn clock_rejects_rewind() {
        let mut sub = AnalyticSubstrate::build(config(8), 1);
        sub.advance_to(SimTime::from_ticks(5));
        sub.advance_to(SimTime::from_ticks(4));
    }
}
