//! 160-bit identifiers and the Kademlia XOR metric.
//!
//! Both node IDs and content keys live in the same 160-bit space, exactly
//! as in Chord/Kademlia-style DHTs (the paper's reference is Stoica et
//! al.'s Chord; Overlay Weaver likewise uses a 160-bit space derived from
//! SHA-1 — we use truncated SHA-256 for key derivation instead).

use emerge_crypto::sha256::Sha256;
use rand::RngCore;
use std::cmp::Ordering;
use std::fmt;

/// Identifier length in bytes (160 bits).
pub const ID_LEN: usize = 20;
/// Identifier length in bits.
pub const ID_BITS: usize = 160;

/// A 160-bit identifier in the DHT space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub [u8; ID_LEN]);

/// The XOR distance between two identifiers.
///
/// Ordered lexicographically, which matches numeric ordering of the
/// underlying 160-bit integers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Distance(pub [u8; ID_LEN]);

impl NodeId {
    /// The all-zero identifier.
    pub const ZERO: NodeId = NodeId([0u8; ID_LEN]);
    /// The all-ones identifier.
    pub const MAX: NodeId = NodeId([0xFF; ID_LEN]);

    /// Creates an ID from raw bytes.
    pub const fn from_bytes(bytes: [u8; ID_LEN]) -> Self {
        NodeId(bytes)
    }

    /// Derives an ID by hashing an arbitrary name (truncated SHA-256).
    ///
    /// This is how content keys and pseudo-random holder addresses are
    /// produced: uniform in the ID space and deterministic.
    pub fn from_name(name: &[u8]) -> Self {
        let digest = Sha256::digest(name);
        let mut bytes = [0u8; ID_LEN];
        bytes.copy_from_slice(&digest[..ID_LEN]);
        NodeId(bytes)
    }

    /// Samples a uniformly random ID.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; ID_LEN];
        rng.fill_bytes(&mut bytes);
        NodeId(bytes)
    }

    /// XOR distance to `other`.
    pub fn distance(&self, other: &NodeId) -> Distance {
        let mut d = [0u8; ID_LEN];
        for ((d, a), b) in d.iter_mut().zip(&self.0).zip(&other.0) {
            *d = a ^ b;
        }
        Distance(d)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; ID_LEN] {
        &self.0
    }

    /// The index of the highest differing bit relative to `other`, i.e.
    /// `159 - leading_zeros(distance)`. Returns `None` for identical IDs.
    ///
    /// This is the k-bucket index in a routing table owned by `self`.
    pub fn bucket_index(&self, other: &NodeId) -> Option<usize> {
        let d = self.distance(other);
        let lz = d.leading_zeros();
        if lz == ID_BITS {
            None
        } else {
            Some(ID_BITS - 1 - lz)
        }
    }

    /// Flips bit `bit` (0 = most significant) returning a new ID. Used to
    /// construct bucket range endpoints.
    pub fn with_flipped_bit(&self, bit: usize) -> NodeId {
        // LINT-WAIVER(panic): documented contract: the bit index is bounded by ID_BITS
        assert!(bit < ID_BITS);
        let mut bytes = self.0;
        bytes[bit / 8] ^= 0x80 >> (bit % 8);
        NodeId(bytes)
    }

    /// Returns the value of bit `bit` (0 = most significant).
    pub fn bit(&self, bit: usize) -> bool {
        // LINT-WAIVER(panic): documented contract: the bit index is bounded by ID_BITS
        assert!(bit < ID_BITS);
        self.0[bit / 8] & (0x80 >> (bit % 8)) != 0
    }

    /// A short hex prefix for logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance([0u8; ID_LEN]);

    /// Number of leading zero bits (160 for the zero distance).
    pub fn leading_zeros(&self) -> usize {
        let mut count = 0;
        for &byte in &self.0 {
            if byte == 0 {
                count += 8;
            } else {
                count += byte.leading_zeros() as usize;
                break;
            }
        }
        count
    }

    /// Whether this is the zero distance (identical IDs).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({}…)", self.short_hex())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Distance(lz={})", self.leading_zeros())
    }
}

impl From<[u8; ID_LEN]> for NodeId {
    fn from(bytes: [u8; ID_LEN]) -> Self {
        NodeId(bytes)
    }
}

/// Sorts `ids` in place by distance to `target` (closest first).
pub fn sort_by_distance(ids: &mut [NodeId], target: &NodeId) {
    ids.sort_by(|a, b| cmp_distance(a, b, target));
}

/// Compares two IDs by their distance to `target`.
pub fn cmp_distance(a: &NodeId, b: &NodeId, target: &NodeId) -> Ordering {
    a.distance(target).cmp(&b.distance(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(byte: u8) -> NodeId {
        NodeId::from_bytes([byte; ID_LEN])
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = id(7);
        assert!(a.distance(&a).is_zero());
        assert_eq!(a.distance(&a).leading_zeros(), ID_BITS);
        assert_eq!(a.bucket_index(&a), None);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = NodeId::from_name(b"a");
        let b = NodeId::from_name(b"b");
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn bucket_index_examples() {
        let zero = NodeId::ZERO;
        // Differ only in the least significant bit -> bucket 0.
        let mut lsb = [0u8; ID_LEN];
        lsb[ID_LEN - 1] = 1;
        assert_eq!(zero.bucket_index(&NodeId::from_bytes(lsb)), Some(0));
        // Differ in the most significant bit -> bucket 159.
        let mut msb = [0u8; ID_LEN];
        msb[0] = 0x80;
        assert_eq!(zero.bucket_index(&NodeId::from_bytes(msb)), Some(159));
    }

    #[test]
    fn flipped_bit_lands_in_expected_bucket() {
        let a = NodeId::from_name(b"node");
        for bit in [0usize, 1, 7, 8, 63, 159] {
            let flipped = a.with_flipped_bit(bit);
            assert_eq!(a.bucket_index(&flipped), Some(ID_BITS - 1 - bit));
            // Flipping twice returns the original.
            assert_eq!(flipped.with_flipped_bit(bit), a);
        }
    }

    #[test]
    fn bit_accessor_matches_flip() {
        let a = NodeId::from_name(b"x");
        for bit in [0usize, 5, 100, 159] {
            assert_ne!(a.bit(bit), a.with_flipped_bit(bit).bit(bit));
        }
    }

    #[test]
    fn from_name_is_deterministic_and_spread() {
        assert_eq!(NodeId::from_name(b"k"), NodeId::from_name(b"k"));
        assert_ne!(NodeId::from_name(b"k1"), NodeId::from_name(b"k2"));
    }

    #[test]
    fn sort_by_distance_orders_correctly() {
        let target = NodeId::ZERO;
        let mut ids = vec![id(3), id(1), id(2), id(0x80)];
        sort_by_distance(&mut ids, &target);
        // Distance to zero is the numeric value of the ID.
        assert_eq!(ids, vec![id(1), id(2), id(3), id(0x80)]);
    }

    #[test]
    fn display_and_debug() {
        let a = NodeId::ZERO;
        assert_eq!(a.to_string().len(), 40);
        assert!(format!("{a:?}").contains("NodeId"));
    }

    #[test]
    fn random_ids_are_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = NodeId::random(&mut rng);
        let b = NodeId::random(&mut rng);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn xor_metric_triangle_inequality_bitwise(
            a in any::<[u8; ID_LEN]>(),
            b in any::<[u8; ID_LEN]>(),
            c in any::<[u8; ID_LEN]>(),
        ) {
            // For XOR, d(a,c) = d(a,b) XOR d(b,c), which implies
            // d(a,c) <= d(a,b) + d(b,c) numerically. We verify the defining
            // identity bitwise.
            let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
            let ab = a.distance(&b);
            let bc = b.distance(&c);
            let ac = a.distance(&c);
            for i in 0..ID_LEN {
                prop_assert_eq!(ac.0[i], ab.0[i] ^ bc.0[i]);
            }
        }

        #[test]
        fn unidirectionality(a in any::<[u8; ID_LEN]>(), b in any::<[u8; ID_LEN]>()) {
            // For a given a and distance d there is exactly one b with
            // d(a,b)=d: XOR is invertible.
            let (a, b) = (NodeId(a), NodeId(b));
            let d = a.distance(&b);
            let mut recovered = [0u8; ID_LEN];
            for ((r, a), d) in recovered.iter_mut().zip(&a.0).zip(&d.0) {
                *r = a ^ d;
            }
            prop_assert_eq!(NodeId(recovered), b);
        }

        #[test]
        fn leading_zeros_bounds(a in any::<[u8; ID_LEN]>(), b in any::<[u8; ID_LEN]>()) {
            let d = NodeId(a).distance(&NodeId(b));
            prop_assert!(d.leading_zeros() <= ID_BITS);
            if a != b {
                prop_assert!(d.leading_zeros() < ID_BITS);
            }
        }
    }
}
