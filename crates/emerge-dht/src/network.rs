//! Network model: per-message latency, loss and traffic accounting.
//!
//! The DHT runs over a simulated network whose only observable properties
//! are message latency and loss. Latencies are drawn uniformly from a
//! configurable band (Overlay Weaver's emulation mode similarly assigns
//! synthetic link delays); losses are Bernoulli per message.

use emerge_sim::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for the network model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Minimum one-way message latency in ticks.
    pub latency_min: u64,
    /// Maximum one-way message latency in ticks (inclusive).
    pub latency_max: u64,
    /// Probability that any given message is silently dropped.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency_min: 10,
            latency_max: 100,
            drop_probability: 0.0,
        }
    }
}

/// Mutable network state: RNG plus counters.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: StdRng,
    messages_sent: u64,
    messages_dropped: u64,
    bytes_sent: u64,
}

impl Network {
    /// Creates a network with its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `latency_min > latency_max` or the drop probability is
    /// outside `[0, 1]`.
    pub fn new(config: NetworkConfig, rng: StdRng) -> Self {
        // LINT-WAIVER(panic): documented # Panics contract on the latency configuration
        assert!(
            config.latency_min <= config.latency_max,
            "latency_min must not exceed latency_max"
        );
        // LINT-WAIVER(panic): documented # Panics contract on the latency configuration
        assert!(
            (0.0..=1.0).contains(&config.drop_probability),
            "drop probability must be in [0, 1]"
        );
        Network {
            config,
            rng,
            messages_sent: 0,
            messages_dropped: 0,
            bytes_sent: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Accounts for one message of `size` bytes and returns its fate:
    /// `Some(latency)` if delivered, `None` if dropped.
    pub fn transmit(&mut self, size: usize) -> Option<SimDuration> {
        self.messages_sent += 1;
        self.bytes_sent += size as u64;
        if self.config.drop_probability > 0.0
            && self.rng.gen::<f64>() < self.config.drop_probability
        {
            self.messages_dropped += 1;
            return None;
        }
        Some(self.sample_latency())
    }

    /// Samples a one-way latency without sending anything.
    pub fn sample_latency(&mut self) -> SimDuration {
        let l = self
            .rng
            .gen_range(self.config.latency_min..=self.config.latency_max);
        SimDuration::from_ticks(l)
    }

    /// Total messages transmitted (including dropped).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages lost to the drop model.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Total payload bytes offered to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Resets the traffic counters (not the RNG).
    pub fn reset_counters(&mut self) {
        self.messages_sent = 0;
        self.messages_dropped = 0;
        self.bytes_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerge_sim::rng::SeedSource;

    fn net(config: NetworkConfig) -> Network {
        Network::new(config, SeedSource::new(1).stream("net"))
    }

    #[test]
    fn latency_within_band() {
        let mut n = net(NetworkConfig {
            latency_min: 10,
            latency_max: 50,
            drop_probability: 0.0,
        });
        for _ in 0..1000 {
            let l = n.transmit(100).expect("no drops configured").ticks();
            assert!((10..=50).contains(&l), "latency {l} out of band");
        }
        assert_eq!(n.messages_sent(), 1000);
        assert_eq!(n.bytes_sent(), 100_000);
        assert_eq!(n.messages_dropped(), 0);
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let mut n = net(NetworkConfig {
            latency_min: 1,
            latency_max: 1,
            drop_probability: 0.3,
        });
        let total = 10_000;
        let dropped = (0..total).filter(|_| n.transmit(1).is_none()).count();
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(n.messages_dropped() as usize, dropped);
    }

    #[test]
    fn zero_width_latency_band() {
        let mut n = net(NetworkConfig {
            latency_min: 42,
            latency_max: 42,
            drop_probability: 0.0,
        });
        assert_eq!(n.sample_latency().ticks(), 42);
    }

    #[test]
    fn reset_counters_clears_traffic_only() {
        let mut n = net(NetworkConfig::default());
        n.transmit(10);
        n.reset_counters();
        assert_eq!(n.messages_sent(), 0);
        assert_eq!(n.bytes_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "latency_min")]
    fn inverted_band_panics() {
        let _ = net(NetworkConfig {
            latency_min: 100,
            latency_max: 10,
            drop_probability: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn bad_drop_probability_panics() {
        let _ = net(NetworkConfig {
            latency_min: 1,
            latency_max: 2,
            drop_probability: 1.5,
        });
    }
}
