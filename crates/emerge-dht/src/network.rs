//! Network model: per-message latency, loss and traffic accounting.
//!
//! The DHT runs over a simulated network whose only observable properties
//! are message latency and loss. Latencies are drawn uniformly from a
//! configurable band (Overlay Weaver's emulation mode similarly assigns
//! synthetic link delays); losses are Bernoulli per message.

use std::fmt;

use emerge_sim::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for the network model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Minimum one-way message latency in ticks.
    pub latency_min: u64,
    /// Maximum one-way message latency in ticks (inclusive).
    pub latency_max: u64,
    /// Probability that any given message is silently dropped.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency_min: 10,
            latency_max: 100,
            drop_probability: 0.0,
        }
    }
}

/// Why a [`NetworkConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkConfigError {
    /// `latency_min` exceeds `latency_max`.
    InvertedLatencyBand {
        /// The configured minimum.
        latency_min: u64,
        /// The configured maximum.
        latency_max: u64,
    },
    /// The drop probability is outside `[0, 1]` (or NaN).
    InvalidDropProbability(
        /// The offending value.
        f64,
    ),
}

impl fmt::Display for NetworkConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkConfigError::InvertedLatencyBand {
                latency_min,
                latency_max,
            } => write!(
                f,
                "latency_min ({latency_min}) must not exceed latency_max ({latency_max})"
            ),
            NetworkConfigError::InvalidDropProbability(p) => {
                write!(f, "drop probability must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for NetworkConfigError {}

impl NetworkConfig {
    /// Checks the configuration invariants: an ordered latency band and a
    /// drop probability in `[0, 1]`.
    pub fn validate(&self) -> Result<(), NetworkConfigError> {
        if self.latency_min > self.latency_max {
            return Err(NetworkConfigError::InvertedLatencyBand {
                latency_min: self.latency_min,
                latency_max: self.latency_max,
            });
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(NetworkConfigError::InvalidDropProbability(
                self.drop_probability,
            ));
        }
        Ok(())
    }

    /// Returns the nearest valid configuration: orders the latency band
    /// and clamps the drop probability into `[0, 1]` (NaN becomes `0`).
    pub fn normalized(self) -> NetworkConfig {
        let (latency_min, latency_max) = if self.latency_min <= self.latency_max {
            (self.latency_min, self.latency_max)
        } else {
            (self.latency_max, self.latency_min)
        };
        let drop_probability = if self.drop_probability.is_nan() {
            0.0
        } else {
            self.drop_probability.clamp(0.0, 1.0)
        };
        NetworkConfig {
            latency_min,
            latency_max,
            drop_probability,
        }
    }
}

/// Mutable network state: RNG plus counters.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: StdRng,
    messages_sent: u64,
    messages_dropped: u64,
    bytes_sent: u64,
}

impl Network {
    /// Creates a network with its own RNG stream, rejecting invalid
    /// configurations (see [`NetworkConfig::validate`]).
    pub fn try_new(config: NetworkConfig, rng: StdRng) -> Result<Self, NetworkConfigError> {
        config.validate()?;
        Ok(Network {
            config,
            rng,
            messages_sent: 0,
            messages_dropped: 0,
            bytes_sent: 0,
        })
    }

    /// Creates a network from the nearest valid form of `config` (see
    /// [`NetworkConfig::normalized`]). Total: never panics, never fails.
    pub fn new_normalized(config: NetworkConfig, rng: StdRng) -> Self {
        let config = config.normalized();
        Network {
            config,
            rng,
            messages_sent: 0,
            messages_dropped: 0,
            bytes_sent: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Accounts for one message of `size` bytes and returns its fate:
    /// `Some(latency)` if delivered, `None` if dropped.
    pub fn transmit(&mut self, size: usize) -> Option<SimDuration> {
        self.messages_sent += 1;
        self.bytes_sent += size as u64;
        if self.config.drop_probability > 0.0
            && self.rng.gen::<f64>() < self.config.drop_probability
        {
            self.messages_dropped += 1;
            return None;
        }
        Some(self.sample_latency())
    }

    /// Samples a one-way latency without sending anything.
    pub fn sample_latency(&mut self) -> SimDuration {
        let l = self
            .rng
            .gen_range(self.config.latency_min..=self.config.latency_max);
        SimDuration::from_ticks(l)
    }

    /// Total messages transmitted (including dropped).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages lost to the drop model.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Total payload bytes offered to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Resets the traffic counters (not the RNG).
    pub fn reset_counters(&mut self) {
        self.messages_sent = 0;
        self.messages_dropped = 0;
        self.bytes_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerge_sim::rng::SeedSource;

    fn net(config: NetworkConfig) -> Network {
        Network::try_new(config, SeedSource::new(1).stream("net")).expect("valid test config")
    }

    #[test]
    fn latency_within_band() {
        let mut n = net(NetworkConfig {
            latency_min: 10,
            latency_max: 50,
            drop_probability: 0.0,
        });
        for _ in 0..1000 {
            let l = n.transmit(100).expect("no drops configured").ticks();
            assert!((10..=50).contains(&l), "latency {l} out of band");
        }
        assert_eq!(n.messages_sent(), 1000);
        assert_eq!(n.bytes_sent(), 100_000);
        assert_eq!(n.messages_dropped(), 0);
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let mut n = net(NetworkConfig {
            latency_min: 1,
            latency_max: 1,
            drop_probability: 0.3,
        });
        let total = 10_000;
        let dropped = (0..total).filter(|_| n.transmit(1).is_none()).count();
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(n.messages_dropped() as usize, dropped);
    }

    #[test]
    fn zero_width_latency_band() {
        let mut n = net(NetworkConfig {
            latency_min: 42,
            latency_max: 42,
            drop_probability: 0.0,
        });
        assert_eq!(n.sample_latency().ticks(), 42);
    }

    #[test]
    fn reset_counters_clears_traffic_only() {
        let mut n = net(NetworkConfig::default());
        n.transmit(10);
        n.reset_counters();
        assert_eq!(n.messages_sent(), 0);
        assert_eq!(n.bytes_sent(), 0);
    }

    #[test]
    fn inverted_band_is_rejected() {
        let config = NetworkConfig {
            latency_min: 100,
            latency_max: 10,
            drop_probability: 0.0,
        };
        assert_eq!(
            config.validate(),
            Err(NetworkConfigError::InvertedLatencyBand {
                latency_min: 100,
                latency_max: 10,
            })
        );
        assert!(Network::try_new(config, SeedSource::new(1).stream("net")).is_err());
    }

    #[test]
    fn bad_drop_probability_is_rejected() {
        let config = NetworkConfig {
            latency_min: 1,
            latency_max: 2,
            drop_probability: 1.5,
        };
        assert_eq!(
            config.validate(),
            Err(NetworkConfigError::InvalidDropProbability(1.5))
        );
    }

    #[test]
    fn normalized_repairs_any_config() {
        let fixed = NetworkConfig {
            latency_min: 100,
            latency_max: 10,
            drop_probability: f64::NAN,
        }
        .normalized();
        assert_eq!(fixed.latency_min, 10);
        assert_eq!(fixed.latency_max, 100);
        assert_eq!(fixed.drop_probability, 0.0);
        assert!(fixed.validate().is_ok());
        let clamped = NetworkConfig {
            latency_min: 1,
            latency_max: 2,
            drop_probability: 1.5,
        }
        .normalized();
        assert_eq!(clamped.drop_probability, 1.0);
        let mut n = Network::new_normalized(
            NetworkConfig {
                latency_min: 9,
                latency_max: 3,
                drop_probability: -0.5,
            },
            SeedSource::new(1).stream("net"),
        );
        let l = n.sample_latency().ticks();
        assert!((3..=9).contains(&l));
    }
}
