//! The whole-network DHT harness: population, churn generations, malicious
//! marking, routing, storage and lookup.
//!
//! An [`Overlay`] owns every node in the simulated DHT. It mirrors how the
//! paper drives Overlay Weaver: "we invoke 10000 DHT node instances …
//! randomly select 10000·p non-repeated nodes and mark them as malicious",
//! with node death following an exponential distribution.
//!
//! ## Slots and generations
//!
//! Churn is modelled with **slots**: a slot is a position in the population
//! that is always occupied by exactly one node *generation*. When the
//! current generation dies, the next one (a fresh node with a fresh ID and
//! an independent malicious draw) takes over instantly — this is the DHT
//! replication mechanism handing the dead node's responsibilities to a
//! replacement, which is precisely the re-exposure channel the paper's
//! churn analysis worries about (Section III-D).

use crate::bucket::DEFAULT_K;
use crate::id::NodeId;
use crate::index::SortedIdIndex;
use crate::lookup::{iterative_find_node, LookupOutcome, NodeQuery};
use crate::network::{Network, NetworkConfig};
use crate::population::{self, Genesis, PopulationConfig};
use crate::storage::Store;
use crate::table::RoutingTable;
use emerge_obs::metrics::CounterId;
use emerge_sim::rng::SeedSource;
use emerge_sim::time::{SimDuration, SimTime};
use rand::Rng;
use std::cell::OnceCell;
use std::collections::HashMap;

pub use crate::population::NodeInfo;

/// Holder resolutions served by the full overlay (recorded into the
/// thread's `emerge-obs` collector, if any).
static RESOLVES: CounterId = CounterId::new("dht.overlay.resolves");

/// Configuration of an overlay network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayConfig {
    /// Number of population slots (live nodes at any instant).
    pub n_nodes: usize,
    /// Kademlia bucket size.
    pub bucket_k: usize,
    /// Lookup parallelism α.
    pub alpha: usize,
    /// Replication factor for stored values.
    pub replication: usize,
    /// Network latency/loss model.
    pub network: NetworkConfig,
    /// Fraction `p` of initially malicious nodes (marked exactly,
    /// `⌊p·n⌋` non-repeated nodes as in the paper's setup).
    pub malicious_fraction: f64,
    /// Mean node lifetime in ticks; `None` disables churn.
    pub mean_lifetime: Option<u64>,
    /// Horizon up to which churn generations are pre-sampled.
    pub horizon: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            n_nodes: 128,
            bucket_k: DEFAULT_K,
            alpha: 3,
            replication: 3,
            network: NetworkConfig::default(),
            malicious_fraction: 0.0,
            mean_lifetime: None,
            horizon: 1_000_000,
        }
    }
}

impl OverlayConfig {
    /// The churn-relevant subset, for [`Genesis::sample`] (and the eager
    /// [`crate::population::Population::build`]).
    pub fn population(&self) -> PopulationConfig {
        PopulationConfig {
            n_nodes: self.n_nodes,
            malicious_fraction: self.malicious_fraction,
            mean_lifetime: self.mean_lifetime,
            horizon: self.horizon,
        }
    }
}

/// A population slot and its succession of node generations, materialized
/// from the shared [`Genesis`] on first access.
///
/// World construction at the paper's 10 000-node scale used to spend
/// milliseconds eagerly sampling every slot's churn timeline; a protocol
/// run touches a few dozen slots, so the overlay now adopts the analytic
/// substrate's per-slot lazy sampling (bit-identical timelines — both
/// sample the same per-slot `Genesis` stream). Slots created by
/// [`Overlay::join`] or mutated by [`Overlay::leave`] hold their
/// timelines directly in the cell.
#[derive(Debug)]
struct Slot {
    generations: OnceCell<Vec<NodeInfo>>,
}

impl Slot {
    fn lazy() -> Self {
        Slot {
            generations: OnceCell::new(),
        }
    }

    fn with(generations: Vec<NodeInfo>) -> Self {
        let cell = OnceCell::new();
        // LINT-WAIVER(panic): a freshly created OnceCell is empty, so the first set always succeeds
        cell.set(generations).expect("fresh cell accepts a value");
        Slot { generations: cell }
    }

    /// The timeline, sampling it from `genesis` on first access.
    fn materialize(&self, slot: usize, genesis: &Genesis) -> &[NodeInfo] {
        self.generations
            .get_or_init(|| genesis.slot_generations(slot))
    }
}

/// Result of a value lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundValue {
    /// The value bytes.
    pub value: Vec<u8>,
    /// Nodes queried during the lookup.
    pub queried: usize,
    /// Lookup rounds.
    pub rounds: usize,
}

/// The simulated DHT network.
#[derive(Debug)]
pub struct Overlay {
    config: OverlayConfig,
    seed: SeedSource,
    /// The deterministic population seed state; slot churn timelines are
    /// sampled from it lazily.
    genesis: Genesis,
    /// Per-slot generation-0 IDs (genesis slots, then joined nodes).
    /// Holder resolution and routing-table construction read these, so
    /// neither materializes a single churn timeline.
    initial_ids: Vec<NodeId>,
    /// Per-slot generation-0 malicious flags (same layout).
    initial_malicious: Vec<bool>,
    /// Sorted generation-0 ID index for closest-slot resolution (shared
    /// machinery with the analytic substrate); updated on `join`.
    index: SortedIdIndex,
    slots: Vec<Slot>,
    /// Generation-0 ID → slot index.
    id_index: HashMap<NodeId, usize>,
    /// Routing tables per slot (for generation-0 IDs); built on demand.
    tables: Option<Vec<RoutingTable>>,
    stores: Vec<Store>,
    network: Network,
    now: SimTime,
}

impl Overlay {
    /// Builds an overlay with `config`, deterministically from `seed`.
    ///
    /// Only generation-0 identities and the malicious marking are sampled
    /// here; each slot's churn timeline materializes on first query
    /// (bit-identical to the eager build — same per-slot streams).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0` or `malicious_fraction ∉ [0, 1]`.
    pub fn build(config: OverlayConfig, seed: u64) -> Self {
        let seed = SeedSource::new(seed);
        let genesis = Genesis::sample(&config.population(), &seed);
        let n = genesis.n_nodes();
        let initial_ids = genesis.initial_ids().to_vec();
        let initial_malicious: Vec<bool> = (0..n).map(|s| genesis.initial_malicious(s)).collect();
        let id_index = initial_ids
            .iter()
            .enumerate()
            .map(|(slot, id)| (*id, slot))
            .collect();
        let index = SortedIdIndex::build(&initial_ids);
        let slots: Vec<Slot> = (0..n).map(|_| Slot::lazy()).collect();

        // Network misconfiguration is repaired rather than rejected here:
        // overlays are built deep inside Monte-Carlo factories where a
        // Result would poison every signature, and the nearest valid
        // config (ordered band, clamped drop rate) is always well-defined.
        let network = Network::new_normalized(config.network, seed.stream("network"));
        let stores = (0..n).map(|_| Store::new()).collect();

        Overlay {
            config,
            seed,
            genesis,
            initial_ids,
            initial_malicious,
            index,
            slots,
            id_index,
            tables: None,
            stores,
            network,
            now: SimTime::ZERO,
        }
    }

    /// The configuration this overlay was built with.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// Number of population slots.
    pub fn n_nodes(&self) -> usize {
        self.slots.len()
    }

    /// Current simulated time of the overlay.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the overlay clock (monotonic).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        // LINT-WAIVER(panic): documented # Panics contract: the overlay clock is monotone
        assert!(t >= self.now, "overlay clock cannot go backwards");
        self.now = t;
    }

    /// The initial (generation-0) node of a slot.
    pub fn initial(&self, slot: usize) -> &NodeInfo {
        &self.generations(slot)[0]
    }

    /// All generations of a slot, in order (sampled on first access).
    pub fn generations(&self, slot: usize) -> &[NodeInfo] {
        self.slots[slot].materialize(slot, &self.genesis)
    }

    /// How many slot timelines have been materialized so far (diagnostic
    /// for the lazy world-build).
    pub fn materialized_timelines(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.generations.get().is_some())
            .count()
    }

    /// The generation occupying `slot` at time `t`.
    pub fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        population::tenant_at(self.generations(slot), t)
    }

    /// Whether the generation-0 node of `slot` is still the occupant and
    /// alive at `t`.
    pub fn initial_alive_at(&self, slot: usize, t: SimTime) -> bool {
        self.generations(slot)[0].alive_at(t)
    }

    /// Number of distinct node generations whose tenancy overlaps the
    /// half-open window `[from, to)` — the key **re-exposure count** used
    /// by the churn analysis: each overlapping generation saw whatever
    /// the slot stored.
    pub fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        population::exposures_during(self.generations(slot), from, to)
    }

    /// Whether any generation of `slot` overlapping the half-open window `[from, to)` is
    /// malicious.
    pub fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        population::any_malicious_exposure(self.generations(slot), from, to)
    }

    /// Slot index of a generation-0 node ID.
    pub fn slot_of_id(&self, id: &NodeId) -> Option<usize> {
        self.id_index.get(id).copied()
    }

    /// The `count` slots whose generation-0 IDs are XOR-closest to
    /// `target`, sorted closest-first — exact, via the shared
    /// [`SortedIdIndex`] trie descent (`O(log² n)` instead of the old
    /// `O(n)` selection scan, which dominated full-overlay Monte-Carlo
    /// trials at 10 000 nodes). Reads only generation-0 IDs — no churn
    /// materialization.
    pub fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        self.index.closest_slots(target, count)
    }

    /// The slot responsible for `target` (closest generation-0 ID). This is
    /// how the key-routing schemes resolve a pseudo-random holder address
    /// to an actual node.
    pub fn resolve_holder(&self, target: &NodeId) -> usize {
        RESOLVES.incr();
        self.index.resolve(target)
    }

    /// Samples `count` distinct slots uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `count > n_nodes`.
    pub fn sample_distinct_slots<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        // LINT-WAIVER(panic): documented # Panics contract: cannot sample more slots than nodes
        assert!(
            count <= self.slots.len(),
            "cannot sample more slots than exist"
        );
        rand::seq::index::sample(rng, self.slots.len(), count).into_vec()
    }

    /// Builds all routing tables from global knowledge ("perfect
    /// bootstrap"). Tables reference generation-0 IDs.
    ///
    /// Complexity is `O(n · 160 · log n)` using prefix-range queries over
    /// the sorted ID space, so it is practical even at the paper's 10000
    /// node scale.
    pub fn build_routing_tables(&mut self) {
        // The closest-slot index already maintains every generation-0
        // `(id, slot)` pair in ascending ID order (kept consistent on
        // `join`), so the prefix-range walk reuses it instead of
        // re-sorting the ID space.
        let sorted: Vec<(NodeId, usize)> = self
            .index
            .entries()
            .iter()
            .map(|&(id, slot)| (id, slot as usize))
            .collect();

        let k = self.config.bucket_k;
        let mut tables = Vec::with_capacity(self.slots.len());
        for own in self.initial_ids.iter().copied() {
            let mut rt = RoutingTable::new(own, k);
            // Bucket for prefix length L covers IDs that share exactly L
            // leading bits with `own`: a contiguous range in sorted order.
            for prefix_len in 0..crate::id::ID_BITS {
                let (lo, hi) = prefix_range(&own, prefix_len);
                let start = sorted.partition_point(|(id, _)| *id < lo);
                let mut taken = 0;
                for &(id, _) in &sorted[start..] {
                    if id > hi || taken >= k {
                        break;
                    }
                    if id != own {
                        rt.insert(id, SimTime::ZERO, false);
                        taken += 1;
                    }
                }
            }
            tables.push(rt);
        }
        self.tables = Some(tables);
    }

    /// Whether routing tables have been built.
    pub fn has_routing_tables(&self) -> bool {
        self.tables.is_some()
    }

    /// The routing table of a slot.
    ///
    /// # Panics
    ///
    /// Panics if routing tables were not built.
    pub fn routing_table(&self, slot: usize) -> &RoutingTable {
        // LINT-WAIVER(panic): documented # Panics contract: routing tables must be built first
        &self.tables.as_ref().expect("routing tables not built")[slot]
    }

    /// Runs an iterative FIND_NODE from `from_slot` toward `target`.
    ///
    /// # Panics
    ///
    /// Panics if routing tables were not built.
    pub fn find_node(&mut self, from_slot: usize, target: NodeId) -> LookupOutcome {
        // LINT-WAIVER(panic): documented # Panics contract: routing tables must be built first
        let tables = self.tables.as_ref().expect("routing tables not built");
        let seeds = tables[from_slot].closest(&target, self.config.bucket_k);
        let mut adapter = QueryAdapter {
            tables,
            id_index: &self.id_index,
            genesis: &self.genesis,
            slots: &self.slots,
            network: &mut self.network,
            now: self.now,
        };
        iterative_find_node(
            &seeds,
            target,
            self.config.bucket_k,
            self.config.alpha,
            &mut adapter,
        )
    }

    /// Stores `value` under `key` on the `replication` closest slots.
    ///
    /// Returns the slots that accepted the value.
    pub fn store(&mut self, key: NodeId, value: Vec<u8>) -> Vec<usize> {
        let targets = self.closest_slots(&key, self.config.replication);
        for &slot in &targets {
            self.stores[slot].put(key, value.clone(), self.now, None);
        }
        targets
    }

    /// Stores with a TTL.
    pub fn store_with_ttl(&mut self, key: NodeId, value: Vec<u8>, ttl: SimDuration) -> Vec<usize> {
        let targets = self.closest_slots(&key, self.config.replication);
        for &slot in &targets {
            self.stores[slot].put(key, value.clone(), self.now, Some(ttl));
        }
        targets
    }

    /// Looks up a value via iterative routing from `from_slot`.
    ///
    /// Returns `None` if no responsible live node has the value.
    ///
    /// # Panics
    ///
    /// Panics if routing tables were not built.
    pub fn find_value(&mut self, from_slot: usize, key: NodeId) -> Option<FoundValue> {
        let outcome = self.find_node(from_slot, key);
        for id in &outcome.closest {
            if let Some(&slot) = self.id_index.get(id) {
                if let Some(v) = self.stores[slot].get(&key, self.now) {
                    return Some(FoundValue {
                        value: v.value.clone(),
                        queried: outcome.queried,
                        rounds: outcome.rounds,
                    });
                }
            }
        }
        None
    }

    /// Direct access to a slot's local store (for protocol hops that
    /// address holders directly rather than via lookup).
    pub fn store_of(&mut self, slot: usize) -> &mut Store {
        &mut self.stores[slot]
    }

    /// Network counters for traffic accounting.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access (latency draws, counter resets).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The seed source, for components that fork protocol-level streams.
    pub fn seed(&self) -> SeedSource {
        self.seed
    }

    /// Count of initially malicious nodes (generation 0; reads the eager
    /// marking, no timeline sampling).
    pub fn initial_malicious_count(&self) -> usize {
        self.initial_malicious.iter().filter(|&&m| m).count()
    }

    /// Adds a brand-new node at the current time via the Kademlia join
    /// flow: look up the newcomer's own ID through a bootstrap node, seed
    /// its routing table with the results, and let the nodes closest to it
    /// learn about it (they would have answered its lookup). Returns the
    /// new slot index.
    ///
    /// Without routing tables the node is only added to the population;
    /// its table is created empty and filled when
    /// [`Overlay::build_routing_tables`] runs.
    pub fn join(&mut self, id: NodeId, malicious: bool) -> usize {
        let slot = self.slots.len();
        // Joined slots carry their timeline directly (they are beyond the
        // genesis population, so there is no stream to sample them from),
        // and every lookup index — IDs, marking, id_index, stores —
        // learns about them here so the lazy build stays consistent.
        self.slots.push(Slot::with(vec![NodeInfo {
            id,
            malicious,
            spawn: self.now,
            death: SimTime::MAX,
        }]));
        self.initial_ids.push(id);
        self.initial_malicious.push(malicious);
        self.id_index.insert(id, slot);
        self.index.insert(id, slot);
        self.stores.push(Store::new());

        if self.tables.is_some() {
            // Lookup toward the newcomer's own ID from a bootstrap node.
            let outcome = self.find_node(0, id);
            // LINT-WAIVER(panic): the find_node call above materialized the routing tables
            let tables = self.tables.as_mut().expect("checked above");
            let mut table = RoutingTable::new(id, self.config.bucket_k);
            for contact in &outcome.closest {
                table.insert(*contact, self.now, false);
            }
            // The bootstrap node itself is always learned.
            table.insert(self.initial_ids[0], self.now, false);
            tables.push(table);
            // Passive learning at the answering side.
            for contact in &outcome.closest {
                if let Some(&s) = self.id_index.get(contact) {
                    tables[s].insert(id, self.now, false);
                }
            }
        }
        slot
    }

    /// Marks the current tenant of `slot` as departed at the current time
    /// (a voluntary leave or crash). Routing tables keep the stale contact
    /// — real tables learn of departures lazily, and lookups route around
    /// unresponsive entries.
    pub fn leave(&mut self, slot: usize) {
        let now = self.now;
        // Materialize before mutating: once a timeline is edited it can
        // never be (re)sampled from the genesis stream, and the OnceCell
        // guarantees exactly that — the edited value is the one every
        // later query sees.
        self.generations(slot);
        let gens = self.slots[slot]
            .generations
            .get_mut()
            // LINT-WAIVER(panic): get_mut on the cell materialized in the line above always succeeds
            .expect("just materialized");
        let current = gens
            .iter_mut()
            .find(|g| g.alive_at(now) || g.death == SimTime::MAX)
            // LINT-WAIVER(panic): every slot keeps an open-ended final generation, so the find always matches
            .expect("slot always has a tenant");
        if current.death > now {
            current.death = now;
        }
    }
}

/// Computes the numeric ID range `[lo, hi]` of IDs sharing exactly
/// `prefix_len` leading bits with `own` (i.e. differing first at bit
/// `prefix_len`).
fn prefix_range(own: &NodeId, prefix_len: usize) -> (NodeId, NodeId) {
    let flipped = own.with_flipped_bit(prefix_len);
    let mut lo = *flipped.as_bytes();
    let mut hi = lo;
    // Clear (lo) / set (hi) all bits below `prefix_len`.
    let boundary = prefix_len + 1;
    for bit in boundary..crate::id::ID_BITS {
        let byte = bit / 8;
        let mask = 0x80u8 >> (bit % 8);
        lo[byte] &= !mask;
        hi[byte] |= mask;
    }
    (NodeId::from_bytes(lo), NodeId::from_bytes(hi))
}

/// Adapter implementing [`NodeQuery`] against overlay state, with network
/// accounting: every query costs a request and a response message.
struct QueryAdapter<'a> {
    tables: &'a [RoutingTable],
    id_index: &'a HashMap<NodeId, usize>,
    genesis: &'a Genesis,
    slots: &'a [Slot],
    network: &'a mut Network,
    now: SimTime,
}

impl NodeQuery for QueryAdapter<'_> {
    fn closest_of(&mut self, node: NodeId, target: NodeId, count: usize) -> Option<Vec<NodeId>> {
        let &slot = self.id_index.get(&node)?;
        // The generation-0 node must still be alive to answer for its ID
        // (this is the liveness check, so it does materialize the queried
        // slot's timeline).
        if !self.slots[slot].materialize(slot, self.genesis)[0].alive_at(self.now) {
            // A dead node never answers; the (lost) request still costs a
            // message.
            self.network.transmit(64);
            return None;
        }
        // One retransmission on loss, as real Kademlia implementations do.
        for _attempt in 0..2 {
            let request_delivered = self.network.transmit(64).is_some();
            if !request_delivered {
                continue;
            }
            // Response message (size approximates `count` contacts).
            if self
                .network
                .transmit(count * crate::id::ID_LEN + 16)
                .is_some()
            {
                return Some(self.tables[slot].closest(&target, count));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::sort_by_distance;

    fn small_config(n: usize) -> OverlayConfig {
        OverlayConfig {
            n_nodes: n,
            ..OverlayConfig::default()
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Overlay::build(small_config(50), 7);
        let b = Overlay::build(small_config(50), 7);
        for i in 0..50 {
            assert_eq!(a.initial(i).id, b.initial(i).id);
        }
        let c = Overlay::build(small_config(50), 8);
        assert_ne!(a.initial(0).id, c.initial(0).id);
    }

    #[test]
    fn world_build_and_resolution_are_lazy() {
        let config = OverlayConfig {
            n_nodes: 1_000,
            malicious_fraction: 0.2,
            mean_lifetime: Some(1_000),
            horizon: 100_000,
            ..OverlayConfig::default()
        };
        let mut overlay = Overlay::build(config, 9);
        assert_eq!(overlay.materialized_timelines(), 0, "build samples none");
        assert_eq!(overlay.initial_malicious_count(), 200);
        let target = NodeId::from_name(b"one-holder");
        let slot = overlay.resolve_holder(&target);
        let _ = overlay.closest_slots(&target, 8);
        assert_eq!(
            overlay.materialized_timelines(),
            0,
            "resolution needs no churn"
        );
        overlay.build_routing_tables();
        assert_eq!(
            overlay.materialized_timelines(),
            0,
            "routing tables are generation-0 only"
        );
        let _ = overlay.generation_at(slot, SimTime::from_ticks(500));
        assert_eq!(overlay.materialized_timelines(), 1);
    }

    #[test]
    fn lazy_overlay_matches_eagerly_sampled_population() {
        // The lazy overlay must produce the exact timelines the eager
        // Population build would have: same per-slot streams, any access
        // order.
        let config = OverlayConfig {
            n_nodes: 120,
            malicious_fraction: 0.3,
            mean_lifetime: Some(700),
            horizon: 30_000,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(config, 77);
        let population =
            crate::population::Population::build(&config.population(), &SeedSource::new(77));
        for slot in [119usize, 0, 55, 55, 7] {
            assert_eq!(
                overlay.generations(slot),
                population.generations[slot],
                "slot {slot}"
            );
        }
    }

    #[test]
    fn leave_after_lazy_build_edits_the_materialized_timeline() {
        let config = OverlayConfig {
            n_nodes: 64,
            mean_lifetime: Some(5_000),
            horizon: 100_000,
            ..OverlayConfig::default()
        };
        let mut overlay = Overlay::build(config, 31);
        overlay.advance_to(SimTime::from_ticks(10));
        overlay.leave(5);
        // The departure sticks: later queries see the edited timeline,
        // not a fresh sample.
        assert!(!overlay.initial_alive_at(5, SimTime::from_ticks(11)));
        assert!(overlay
            .generations(5)
            .iter()
            .any(|g| g.death == SimTime::from_ticks(10)));
    }

    #[test]
    fn malicious_marking_is_exact() {
        let config = OverlayConfig {
            n_nodes: 1000,
            malicious_fraction: 0.3,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(config, 1);
        assert_eq!(overlay.initial_malicious_count(), 300);
    }

    #[test]
    fn no_churn_means_immortal_nodes() {
        let overlay = Overlay::build(small_config(20), 2);
        for slot in 0..20 {
            assert_eq!(overlay.generations(slot).len(), 1);
            assert!(overlay.initial_alive_at(slot, SimTime::from_ticks(u64::MAX - 1)));
        }
    }

    #[test]
    fn churn_generations_tile_the_horizon() {
        let config = OverlayConfig {
            n_nodes: 100,
            mean_lifetime: Some(1000),
            horizon: 10_000,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(config, 3);
        let mut multi_gen = 0;
        for slot in 0..100 {
            let gens = overlay.generations(slot);
            if gens.len() > 1 {
                multi_gen += 1;
            }
            // Generations are contiguous: next spawn == previous death.
            for w in gens.windows(2) {
                assert_eq!(w[0].death, w[1].spawn);
            }
            assert_eq!(gens.last().unwrap().death, SimTime::MAX);
            assert_eq!(gens[0].spawn, SimTime::ZERO);
        }
        // With horizon = 10 lifetimes, nearly every slot churns.
        assert!(multi_gen > 90, "only {multi_gen} slots churned");
    }

    #[test]
    fn generation_at_finds_the_right_tenant() {
        let config = OverlayConfig {
            n_nodes: 50,
            mean_lifetime: Some(500),
            horizon: 50_000,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(config, 4);
        for slot in 0..50 {
            for t in [0u64, 100, 1000, 10_000, 49_999] {
                let t = SimTime::from_ticks(t);
                let g = overlay.generation_at(slot, t);
                assert!(
                    g.alive_at(t) || g.death == SimTime::MAX,
                    "tenant must cover the queried instant"
                );
            }
        }
    }

    #[test]
    fn exposures_count_overlapping_generations() {
        let config = OverlayConfig {
            n_nodes: 200,
            mean_lifetime: Some(100),
            horizon: 100_000,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(config, 5);
        // Over [0, 1000) with mean lifetime 100 we expect ~11 generations.
        let mut total = 0usize;
        for slot in 0..200 {
            let e = overlay.exposures_during(slot, SimTime::ZERO, SimTime::from_ticks(1000));
            assert!(e >= 1);
            total += e;
        }
        let mean = total as f64 / 200.0;
        assert!(
            (mean - 11.0).abs() < 2.0,
            "mean exposures {mean}, expected ≈ 11"
        );
    }

    #[test]
    fn closest_slots_is_exact() {
        let overlay = Overlay::build(small_config(300), 6);
        let target = NodeId::from_name(b"target");
        let slots = overlay.closest_slots(&target, 5);
        // Verify against brute force over IDs.
        let mut ids: Vec<NodeId> = (0..300).map(|i| overlay.initial(i).id).collect();
        sort_by_distance(&mut ids, &target);
        for (rank, slot) in slots.iter().enumerate() {
            assert_eq!(overlay.initial(*slot).id, ids[rank]);
        }
    }

    #[test]
    fn routing_tables_enable_convergent_lookup() {
        let mut overlay = Overlay::build(small_config(256), 7);
        overlay.build_routing_tables();
        let target = NodeId::from_name(b"lookup-target");
        let truth = overlay.initial(overlay.resolve_holder(&target)).id;
        for from in [0usize, 17, 255] {
            let outcome = overlay.find_node(from, target);
            assert_eq!(
                outcome.closest[0], truth,
                "lookup from {from} must find the responsible node"
            );
        }
    }

    #[test]
    fn store_and_find_value() {
        let mut overlay = Overlay::build(small_config(128), 8);
        overlay.build_routing_tables();
        let key = NodeId::from_name(b"stored-key");
        let written_to = overlay.store(key, b"payload".to_vec());
        assert_eq!(written_to.len(), overlay.config().replication);
        let found = overlay.find_value(5, key).expect("must find stored value");
        assert_eq!(found.value, b"payload");
        assert!(found.queried > 0);
    }

    #[test]
    fn find_value_misses_unknown_key() {
        let mut overlay = Overlay::build(small_config(64), 9);
        overlay.build_routing_tables();
        assert!(overlay.find_value(0, NodeId::from_name(b"nope")).is_none());
    }

    #[test]
    fn lookup_message_accounting() {
        let mut overlay = Overlay::build(small_config(128), 10);
        overlay.build_routing_tables();
        let before = overlay.network().messages_sent();
        overlay.find_node(0, NodeId::from_name(b"x"));
        assert!(overlay.network().messages_sent() > before);
    }

    #[test]
    fn sample_distinct_slots_has_no_repeats() {
        let overlay = Overlay::build(small_config(100), 11);
        let mut rng = overlay.seed().stream("sampling");
        let sample = overlay.sample_distinct_slots(40, &mut rng);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 40);
    }

    #[test]
    fn prefix_range_brackets_exactly_that_bucket() {
        let own = NodeId::from_name(b"owner");
        for prefix_len in [0usize, 1, 8, 100, 159] {
            let (lo, hi) = prefix_range(&own, prefix_len);
            assert!(lo <= hi);
            // Everything in [lo, hi] differs from own first at prefix_len.
            assert_eq!(
                own.bucket_index(&lo),
                Some(crate::id::ID_BITS - 1 - prefix_len)
            );
            assert_eq!(
                own.bucket_index(&hi),
                Some(crate::id::ID_BITS - 1 - prefix_len)
            );
        }
    }

    #[test]
    fn clock_is_monotonic() {
        let mut overlay = Overlay::build(small_config(10), 12);
        overlay.advance_to(SimTime::from_ticks(5));
        assert_eq!(overlay.now(), SimTime::from_ticks(5));
    }

    #[test]
    #[should_panic(expected = "cannot go backwards")]
    fn clock_rejects_rewind() {
        let mut overlay = Overlay::build(small_config(10), 13);
        overlay.advance_to(SimTime::from_ticks(5));
        overlay.advance_to(SimTime::from_ticks(4));
    }

    #[test]
    fn join_integrates_a_newcomer() {
        let mut overlay = Overlay::build(small_config(128), 21);
        overlay.build_routing_tables();
        let newcomer = NodeId::from_name(b"newcomer");
        let slot = overlay.join(newcomer, false);
        assert_eq!(overlay.n_nodes(), 129);
        assert_eq!(overlay.slot_of_id(&newcomer), Some(slot));
        // The newcomer has working routes: it can find stored data.
        let key = NodeId::from_name(b"post-join-key");
        overlay.store(key, b"found".to_vec());
        let found = overlay
            .find_value(slot, key)
            .expect("newcomer must be able to look up values");
        assert_eq!(found.value, b"found");
        // And the network can find the newcomer.
        let outcome = overlay.find_node(3, newcomer);
        assert_eq!(outcome.closest[0], newcomer);
    }

    #[test]
    fn leave_makes_a_node_unresponsive() {
        let mut overlay = Overlay::build(small_config(64), 22);
        overlay.build_routing_tables();
        overlay.advance_to(SimTime::from_ticks(10));
        overlay.leave(5);
        assert!(!overlay.initial_alive_at(5, SimTime::from_ticks(11)));
        assert!(overlay.initial_alive_at(5, SimTime::from_ticks(9)));
        // Lookups still converge around the departed node.
        let target = NodeId::from_name(b"after-leave");
        let outcome = overlay.find_node(0, target);
        assert!(!outcome.closest.is_empty());
    }

    #[test]
    fn join_before_tables_is_population_only() {
        let mut overlay = Overlay::build(small_config(32), 23);
        let id = NodeId::from_name(b"early-bird");
        let slot = overlay.join(id, true);
        assert_eq!(overlay.initial(slot).id, id);
        assert!(overlay.initial(slot).malicious);
        assert!(!overlay.has_routing_tables());
    }

    #[test]
    fn dead_nodes_do_not_answer_lookups() {
        let config = OverlayConfig {
            n_nodes: 128,
            mean_lifetime: Some(1000),
            horizon: 100_000,
            ..OverlayConfig::default()
        };
        let mut overlay = Overlay::build(config, 14);
        overlay.build_routing_tables();
        // Move far past the mean lifetime: most gen-0 nodes are dead.
        overlay.advance_to(SimTime::from_ticks(50_000));
        let outcome = overlay.find_node(0, NodeId::from_name(b"y"));
        assert!(
            outcome.timeouts > 0,
            "expected timeouts when querying mostly-dead generation-0 nodes"
        );
    }
}
