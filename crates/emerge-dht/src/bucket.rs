//! Kademlia k-buckets with least-recently-seen eviction.
//!
//! A bucket holds up to `k` contacts that share a given distance prefix
//! with the owning node. Contacts are kept ordered from least- to most-
//! recently seen; refreshing a contact moves it to the tail. When a full
//! bucket sees a new contact, the standard Kademlia policy applies: the
//! least-recently-seen contact is evicted only if it is no longer alive
//! (here: flagged stale by the caller), otherwise the newcomer is dropped.

use crate::id::NodeId;
use emerge_sim::time::SimTime;

/// Default bucket capacity (Kademlia's k).
pub const DEFAULT_K: usize = 20;

/// One routing-table contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    /// The contact's identifier.
    pub id: NodeId,
    /// When the contact was last seen (message received).
    pub last_seen: SimTime,
}

/// Outcome of offering a contact to a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The contact was added to the bucket.
    Added,
    /// The contact already existed; its recency was refreshed.
    Refreshed,
    /// The bucket was full and the oldest contact was evicted in favour of
    /// the newcomer (the evicted ID is returned).
    Replaced(NodeId),
    /// The bucket was full of live contacts; the newcomer was dropped.
    Full,
}

/// A k-bucket: bounded list of contacts, least-recently-seen first.
#[derive(Debug, Clone)]
pub struct KBucket {
    capacity: usize,
    contacts: Vec<Contact>,
}

impl KBucket {
    /// Creates an empty bucket with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        // LINT-WAIVER(panic): documented # Panics contract: a zero-capacity bucket is a caller bug
        assert!(capacity > 0, "bucket capacity must be positive");
        KBucket {
            capacity,
            contacts: Vec::with_capacity(capacity),
        }
    }

    /// Number of contacts currently stored.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// Whether the bucket holds no contacts.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// Whether the bucket is at capacity.
    pub fn is_full(&self) -> bool {
        self.contacts.len() >= self.capacity
    }

    /// Iterates contacts from least- to most-recently seen.
    pub fn iter(&self) -> impl Iterator<Item = &Contact> {
        self.contacts.iter()
    }

    /// Looks up a contact by ID.
    pub fn get(&self, id: &NodeId) -> Option<&Contact> {
        self.contacts.iter().find(|c| c.id == *id)
    }

    /// Offers a contact to the bucket.
    ///
    /// `oldest_is_stale` tells the bucket whether its least-recently-seen
    /// contact failed a liveness check; the caller typically pings the
    /// oldest contact before offering when the bucket is full.
    pub fn offer(&mut self, id: NodeId, now: SimTime, oldest_is_stale: bool) -> InsertOutcome {
        if let Some(pos) = self.contacts.iter().position(|c| c.id == id) {
            let mut c = self.contacts.remove(pos);
            c.last_seen = now;
            self.contacts.push(c);
            return InsertOutcome::Refreshed;
        }
        if !self.is_full() {
            self.contacts.push(Contact { id, last_seen: now });
            return InsertOutcome::Added;
        }
        if oldest_is_stale {
            let evicted = self.contacts.remove(0);
            self.contacts.push(Contact { id, last_seen: now });
            return InsertOutcome::Replaced(evicted.id);
        }
        InsertOutcome::Full
    }

    /// Removes a contact (e.g. confirmed dead), returning whether it was
    /// present.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        if let Some(pos) = self.contacts.iter().position(|c| c.id == *id) {
            self.contacts.remove(pos);
            true
        } else {
            false
        }
    }

    /// The least-recently-seen contact, if any.
    pub fn oldest(&self) -> Option<&Contact> {
        self.contacts.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ID_LEN;

    fn id(b: u8) -> NodeId {
        NodeId::from_bytes([b; ID_LEN])
    }

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn add_until_full() {
        let mut b = KBucket::new(3);
        assert_eq!(b.offer(id(1), t(1), false), InsertOutcome::Added);
        assert_eq!(b.offer(id(2), t(2), false), InsertOutcome::Added);
        assert_eq!(b.offer(id(3), t(3), false), InsertOutcome::Added);
        assert!(b.is_full());
        assert_eq!(b.offer(id(4), t(4), false), InsertOutcome::Full);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn refresh_moves_to_tail() {
        let mut b = KBucket::new(3);
        b.offer(id(1), t(1), false);
        b.offer(id(2), t(2), false);
        assert_eq!(b.oldest().unwrap().id, id(1));
        assert_eq!(b.offer(id(1), t(3), false), InsertOutcome::Refreshed);
        assert_eq!(b.oldest().unwrap().id, id(2));
        assert_eq!(b.get(&id(1)).unwrap().last_seen, t(3));
    }

    #[test]
    fn stale_oldest_gets_replaced() {
        let mut b = KBucket::new(2);
        b.offer(id(1), t(1), false);
        b.offer(id(2), t(2), false);
        assert_eq!(b.offer(id(3), t(3), true), InsertOutcome::Replaced(id(1)));
        assert!(b.get(&id(1)).is_none());
        assert!(b.get(&id(3)).is_some());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn live_oldest_survives() {
        let mut b = KBucket::new(2);
        b.offer(id(1), t(1), false);
        b.offer(id(2), t(2), false);
        assert_eq!(b.offer(id(3), t(3), false), InsertOutcome::Full);
        assert!(b.get(&id(1)).is_some());
        assert!(b.get(&id(3)).is_none());
    }

    #[test]
    fn remove_contact() {
        let mut b = KBucket::new(2);
        b.offer(id(1), t(1), false);
        assert!(b.remove(&id(1)));
        assert!(!b.remove(&id(1)));
        assert!(b.is_empty());
    }

    #[test]
    fn iteration_order_is_lru() {
        let mut b = KBucket::new(4);
        for i in 1..=4 {
            b.offer(id(i), t(i as u64), false);
        }
        b.offer(id(2), t(9), false); // refresh 2
        let order: Vec<NodeId> = b.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![id(1), id(3), id(4), id(2)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = KBucket::new(0);
    }
}
