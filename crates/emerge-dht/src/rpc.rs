//! The four Kademlia RPCs and their wire encoding.
//!
//! The simulation mostly passes RPCs as in-memory values, but every message
//! can be serialized with the same length-prefixed format used by the onion
//! layers, which keeps message sizes honest in the network accounting and
//! gives the protocol a real wire story.

use crate::id::{NodeId, ID_LEN};
use emerge_crypto::error::CryptoError;
use emerge_crypto::wire::{Reader, Writer};

/// A request from one node to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store a value under a key on the receiver.
    Store {
        /// The content key.
        key: NodeId,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Ask for the receiver's k closest contacts to `target`.
    FindNode {
        /// The lookup target.
        target: NodeId,
    },
    /// Ask for a value, falling back to closest contacts.
    FindValue {
        /// The content key.
        key: NodeId,
    },
}

/// A response to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Acknowledges a store.
    StoreOk,
    /// Closest contacts known to the responder.
    Nodes(Vec<NodeId>),
    /// The requested value (reply to `FindValue` on a hit).
    Value(Vec<u8>),
}

/// A full message envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender ID.
    pub from: NodeId,
    /// Receiver ID.
    pub to: NodeId,
    /// Request or response body.
    pub body: Body,
}

/// Either half of an RPC exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// A request with a caller-chosen correlation id.
    Request(u64, Request),
    /// A response carrying the correlated request id.
    Response(u64, Response),
}

const TAG_PING: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_FIND_NODE: u8 = 2;
const TAG_FIND_VALUE: u8 = 3;
const TAG_PONG: u8 = 4;
const TAG_STORE_OK: u8 = 5;
const TAG_NODES: u8 = 6;
const TAG_VALUE: u8 = 7;
const TAG_REQ: u8 = 0;
const TAG_RESP: u8 = 1;

impl Message {
    /// Serializes the message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(self.from.as_bytes());
        w.put_raw(self.to.as_bytes());
        match &self.body {
            Body::Request(id, req) => {
                w.put_u8(TAG_REQ).put_u64(*id);
                encode_request(&mut w, req);
            }
            Body::Response(id, resp) => {
                w.put_u8(TAG_RESP).put_u64(*id);
                encode_response(&mut w, resp);
            }
        }
        w.into_bytes()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let from = read_id(&mut r)?;
        let to = read_id(&mut r)?;
        let kind = r.get_u8()?;
        let corr = r.get_u64()?;
        let body = match kind {
            TAG_REQ => Body::Request(corr, decode_request(&mut r)?),
            TAG_RESP => Body::Response(corr, decode_response(&mut r)?),
            _ => return Err(CryptoError::Malformed("unknown message kind")),
        };
        r.expect_end()?;
        Ok(Message { from, to, body })
    }

    /// The serialized size in bytes (without building the buffer twice).
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

fn read_id(r: &mut Reader<'_>) -> Result<NodeId, CryptoError> {
    let raw = r.get_raw(ID_LEN)?;
    let mut bytes = [0u8; ID_LEN];
    bytes.copy_from_slice(raw);
    Ok(NodeId::from_bytes(bytes))
}

fn encode_request(w: &mut Writer, req: &Request) {
    match req {
        Request::Ping => {
            w.put_u8(TAG_PING);
        }
        Request::Store { key, value } => {
            w.put_u8(TAG_STORE).put_raw(key.as_bytes()).put_bytes(value);
        }
        Request::FindNode { target } => {
            w.put_u8(TAG_FIND_NODE).put_raw(target.as_bytes());
        }
        Request::FindValue { key } => {
            w.put_u8(TAG_FIND_VALUE).put_raw(key.as_bytes());
        }
    }
}

fn decode_request(r: &mut Reader<'_>) -> Result<Request, CryptoError> {
    match r.get_u8()? {
        TAG_PING => Ok(Request::Ping),
        TAG_STORE => Ok(Request::Store {
            key: read_id(r)?,
            value: r.get_bytes()?.to_vec(),
        }),
        TAG_FIND_NODE => Ok(Request::FindNode {
            target: read_id(r)?,
        }),
        TAG_FIND_VALUE => Ok(Request::FindValue { key: read_id(r)? }),
        _ => Err(CryptoError::Malformed("unknown request tag")),
    }
}

fn encode_response(w: &mut Writer, resp: &Response) {
    match resp {
        Response::Pong => {
            w.put_u8(TAG_PONG);
        }
        Response::StoreOk => {
            w.put_u8(TAG_STORE_OK);
        }
        Response::Nodes(ids) => {
            w.put_u8(TAG_NODES).put_u32(ids.len() as u32);
            for id in ids {
                w.put_raw(id.as_bytes());
            }
        }
        Response::Value(v) => {
            w.put_u8(TAG_VALUE).put_bytes(v);
        }
    }
}

fn decode_response(r: &mut Reader<'_>) -> Result<Response, CryptoError> {
    match r.get_u8()? {
        TAG_PONG => Ok(Response::Pong),
        TAG_STORE_OK => Ok(Response::StoreOk),
        TAG_NODES => {
            let count = r.get_u32()? as usize;
            if count > 1024 {
                return Err(CryptoError::Malformed("implausible contact count"));
            }
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(read_id(r)?);
            }
            Ok(Response::Nodes(ids))
        }
        TAG_VALUE => Ok(Response::Value(r.get_bytes()?.to_vec())),
        _ => Err(CryptoError::Malformed("unknown response tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(name: &[u8]) -> NodeId {
        NodeId::from_name(name)
    }

    fn roundtrip(body: Body) {
        let msg = Message {
            from: id(b"alice"),
            to: id(b"bob"),
            body,
        };
        let bytes = msg.to_bytes();
        let parsed = Message::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, msg);
        assert_eq!(msg.encoded_len(), bytes.len());
    }

    #[test]
    fn roundtrip_all_requests() {
        roundtrip(Body::Request(1, Request::Ping));
        roundtrip(Body::Request(
            2,
            Request::Store {
                key: id(b"k"),
                value: vec![1, 2, 3],
            },
        ));
        roundtrip(Body::Request(3, Request::FindNode { target: id(b"t") }));
        roundtrip(Body::Request(4, Request::FindValue { key: id(b"k") }));
    }

    #[test]
    fn roundtrip_all_responses() {
        roundtrip(Body::Response(1, Response::Pong));
        roundtrip(Body::Response(2, Response::StoreOk));
        roundtrip(Body::Response(
            3,
            Response::Nodes(vec![id(b"a"), id(b"b"), id(b"c")]),
        ));
        roundtrip(Body::Response(4, Response::Value(b"v".to_vec())));
    }

    #[test]
    fn truncated_message_rejected() {
        let msg = Message {
            from: id(b"a"),
            to: id(b"b"),
            body: Body::Request(9, Request::Ping),
        };
        let bytes = msg.to_bytes();
        for cut in [0, 10, 20, bytes.len() - 1] {
            assert!(Message::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let msg = Message {
            from: id(b"a"),
            to: id(b"b"),
            body: Body::Response(9, Response::Pong),
        };
        let mut bytes = msg.to_bytes();
        bytes.push(0);
        assert!(Message::from_bytes(&bytes).is_err());
    }

    #[test]
    fn implausible_node_count_rejected() {
        let msg = Message {
            from: id(b"a"),
            to: id(b"b"),
            body: Body::Response(9, Response::Nodes(vec![])),
        };
        let mut bytes = msg.to_bytes();
        // Patch the count field (last 4 bytes of an empty Nodes response).
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::from_bytes(&bytes).is_err());
    }
}
