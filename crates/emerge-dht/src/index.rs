//! The sorted generation-0 ID index shared by every DHT substrate.
//!
//! Resolving a pseudo-random holder address to the XOR-closest node is
//! the innermost loop of path construction; at the paper's 10 000-node
//! scale a linear selection costs ~200 µs per address and dominated the
//! full overlay's Monte-Carlo trials. This index keeps `(id, slot)` pairs
//! in ascending ID order and resolves by descending the implicit binary
//! trie over that order — `O(log² n)` per query, identical output to the
//! brute-force XOR sort (pinned by the analytic substrate's tests and the
//! overlay/analytic parity suites).
//!
//! [`crate::analytic::AnalyticSubstrate`] builds one at construction;
//! [`crate::overlay::Overlay`] additionally mutates it when a node
//! [`join`](crate::overlay::Overlay::join)s (the "lookup invalidation"
//! the lazy world-build needs — joins extend the ID space, so the index
//! learns the newcomer immediately; `leave` marks a death but never
//! changes generation-0 responsibility, so it needs no index update).

use crate::id::{NodeId, ID_BITS};

/// `(id, slot)` pairs in ascending ID order, with closest-slot queries.
#[derive(Debug, Clone)]
pub struct SortedIdIndex {
    sorted: Vec<(NodeId, u32)>,
}

/// Reusable decoration buffer for [`SortedIdIndex::rebuild`], so repeated
/// world builds sort without reallocating the tuple staging area.
#[derive(Debug, Default)]
pub struct IndexScratch {
    decorated: Vec<(u64, NodeId, u32)>,
}

impl SortedIdIndex {
    /// Builds the index over `ids`, where position `i` is slot `i`.
    ///
    /// Uses a decorated sort: comparing 20-byte IDs byte-wise is the
    /// dominant cost of world construction at 10 000 slots, and almost
    /// every comparison is already decided by the first eight bytes.
    /// Sorting `(u64 prefix, id, slot)` tuples resolves those with one
    /// integer compare and falls back to the full ID only on prefix ties
    /// — the tuple order equals the plain `(id, slot)` order, so the
    /// index (and every resolution built on it) is unchanged.
    pub fn build(ids: &[NodeId]) -> Self {
        let mut decorated: Vec<(u64, NodeId, u32)> = ids
            .iter()
            .enumerate()
            .map(|(slot, id)| (prefix64(id), *id, slot as u32))
            .collect();
        decorated.sort_unstable();
        SortedIdIndex {
            sorted: decorated
                .into_iter()
                .map(|(_, id, slot)| (id, slot))
                .collect(),
        }
    }

    /// Rebuilds the index over `ids` in place — identical order and
    /// content to [`SortedIdIndex::build`], but reusing both the sorted
    /// storage and the caller's decoration scratch. `sort_unstable` is
    /// in-place, so a warm rebuild performs no heap allocation.
    pub fn rebuild(&mut self, ids: &[NodeId], scratch: &mut IndexScratch) {
        scratch.decorated.clear();
        scratch.decorated.extend(
            ids.iter()
                .enumerate()
                .map(|(slot, id)| (prefix64(id), *id, slot as u32)),
        );
        scratch.decorated.sort_unstable();
        self.sorted.clear();
        self.sorted
            .extend(scratch.decorated.iter().map(|&(_, id, slot)| (id, slot)));
    }

    /// Number of indexed IDs.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `(id, slot)` pairs in ascending ID order — for consumers that
    /// need a sorted walk of the ID space (e.g. the overlay's
    /// prefix-range routing-table construction) without re-sorting what
    /// the index already maintains.
    pub fn entries(&self) -> &[(NodeId, u32)] {
        &self.sorted
    }

    /// Registers a newly joined `slot` under `id`, keeping the order
    /// invariant (binary-search insert).
    pub fn insert(&mut self, id: NodeId, slot: usize) {
        let pos = self
            .sorted
            .partition_point(|(i, s)| (*i, *s) < (id, slot as u32));
        self.sorted.insert(pos, (id, slot as u32));
    }

    /// The `count` slots whose IDs are XOR-closest to `target`, closest
    /// first — identical output to brute-force XOR sorting, computed by
    /// descending the implicit binary trie over the sorted order.
    pub fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count.min(self.sorted.len()));
        self.visit_closest(0, self.sorted.len(), 0, target, count, &mut out);
        out
    }

    /// The slot responsible for `target` (XOR-closest ID).
    ///
    /// Allocation-free specialization of `closest_slots(target, 1)`: the
    /// single closest ID never requires visiting a sibling subtree, so
    /// the descent keeps narrowing one range — choosing the target-side
    /// half whenever it is non-empty — until a leaf remains. Identical
    /// result to the general traversal (on duplicate-ID leaves both
    /// return the first slot in sorted order).
    ///
    /// # Panics
    ///
    /// Panics if the index is empty.
    pub fn resolve(&self, target: &NodeId) -> usize {
        let (mut lo, mut hi) = (0usize, self.sorted.len());
        let mut bit = 0usize;
        while hi - lo > 1 && bit < ID_BITS {
            let split = lo + self.sorted[lo..hi].partition_point(|(id, _)| !id.bit(bit));
            if target.bit(bit) {
                if split < hi {
                    lo = split;
                } else {
                    hi = split;
                }
            } else if split > lo {
                hi = split;
            } else {
                lo = split;
            }
            bit += 1;
        }
        self.sorted[lo].1 as usize
    }

    /// In-order traversal of the ID trie, target-side subtree first: every
    /// ID in the subtree sharing `target`'s bit at the split level is
    /// XOR-closer than any ID in the sibling subtree, so appending in
    /// visit order enumerates slots in increasing XOR distance.
    fn visit_closest(
        &self,
        lo: usize,
        hi: usize,
        bit: usize,
        target: &NodeId,
        count: usize,
        out: &mut Vec<usize>,
    ) {
        if lo >= hi || out.len() >= count {
            return;
        }
        if hi - lo == 1 || bit >= ID_BITS {
            // Leaf range: a multi-element range at bit 160 means duplicate
            // IDs — append in sorted order, matching a stable XOR sort.
            for &(_, slot) in &self.sorted[lo..hi] {
                if out.len() >= count {
                    return;
                }
                out.push(slot as usize);
            }
            return;
        }
        let split = lo + self.sorted[lo..hi].partition_point(|(id, _)| !id.bit(bit));
        if target.bit(bit) {
            self.visit_closest(split, hi, bit + 1, target, count, out);
            self.visit_closest(lo, split, bit + 1, target, count, out);
        } else {
            self.visit_closest(lo, split, bit + 1, target, count, out);
            self.visit_closest(split, hi, bit + 1, target, count, out);
        }
    }
}

fn prefix64(id: &NodeId) -> u64 {
    // LINT-WAIVER(panic): a NodeId is 32 bytes, so the 8-byte prefix slice always converts
    u64::from_be_bytes(id.as_bytes()[..8].try_into().expect("8-byte prefix"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::sort_by_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_ids(n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| NodeId::random(&mut rng)).collect()
    }

    #[test]
    fn closest_matches_brute_force() {
        let ids = random_ids(257, 3);
        let index = SortedIdIndex::build(&ids);
        let mut rng = StdRng::seed_from_u64(17);
        for i in 0..40 {
            let target = if i % 4 == 0 {
                ids[i * 5 % ids.len()]
            } else {
                NodeId::random(&mut rng)
            };
            let got = index.closest_slots(&target, 9);
            let mut expect = ids.clone();
            sort_by_distance(&mut expect, &target);
            for (rank, slot) in got.iter().enumerate() {
                assert_eq!(ids[*slot], expect[rank], "rank {rank}");
            }
            assert_eq!(index.resolve(&target), got[0]);
        }
    }

    #[test]
    fn insert_keeps_resolution_exact() {
        let mut ids = random_ids(64, 5);
        let mut index = SortedIdIndex::build(&ids);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..32 {
            let id = NodeId::random(&mut rng);
            index.insert(id, ids.len());
            ids.push(id);
            let target = NodeId::random(&mut rng);
            let got = index.closest_slots(&target, 5);
            let mut expect = ids.clone();
            sort_by_distance(&mut expect, &target);
            for (rank, slot) in got.iter().enumerate() {
                assert_eq!(ids[*slot], expect[rank]);
            }
        }
        assert_eq!(index.len(), 96);
    }

    #[test]
    fn edge_counts() {
        let ids = random_ids(16, 7);
        let index = SortedIdIndex::build(&ids);
        let target = NodeId::from_name(b"x");
        assert!(index.closest_slots(&target, 0).is_empty());
        assert_eq!(index.closest_slots(&target, 16).len(), 16);
        assert_eq!(index.closest_slots(&target, 100).len(), 16);
        assert!(!index.is_empty());
    }
}
