//! Shared machinery of the sharded Monte-Carlo engines: contiguous range
//! partitioning and the trial-digest hash.
//!
//! Both the wire-protocol engine (`emerge-core::montecarlo`) and the
//! contract-native bonded engine (`emerge-contract::mc`) rest on the same
//! two building blocks, and their "sharded == serial bit for bit"
//! guarantee requires the two engines to *stay* identical — so the
//! blocks live here, in the crate both already depend on:
//!
//! * [`shard_ranges`] splits a trial batch into contiguous near-equal
//!   ranges, and
//! * [`TrialDigest`] is the FNV-1a accumulator whose [`mix64`]-finalized
//!   output is combined across trials by wrapping addition — an
//!   associative, commutative operation, so any merge tree over disjoint
//!   trial ranges reproduces the serial digest exactly.

use emerge_obs::MetricsSnapshot;

/// Partitions `trials` into exactly `max(shards, 1)` contiguous
/// `(first_trial, count)` ranges whose sizes differ by at most one.
///
/// When `trials < shards` the trailing ranges are empty `(trials, 0)`:
/// a worker handed one runs zero trials and produces the default result,
/// which merges as the identity. Emitting exactly one range per requested
/// shard (instead of silently clamping the shard count to the trial
/// count, as this function once did) lets a fixed worker fleet be handed
/// one range each regardless of how small the batch is.
pub fn shard_ranges(trials: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let base = trials / shards;
    let extra = trials % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let count = base + usize::from(i < extra);
        ranges.push((start, count));
        start += count;
    }
    ranges
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// SplitMix64 finalizer (Vigna 2015). Applied to each trial's FNV state
/// so that the wrapping-sum combination of per-trial digests has full
/// 64-bit diffusion (raw FNV outputs are biased in the low bits).
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An FNV-1a accumulator for one trial's digest. Key it by the *global*
/// trial index first ([`TrialDigest::eat`] the index bytes), so the
/// digest is sensitive to which trial produced an outcome even though
/// the cross-trial combination is commutative.
#[derive(Debug, Clone, Copy)]
pub struct TrialDigest {
    state: u64,
}

impl TrialDigest {
    /// A fresh accumulator at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        TrialDigest { state: FNV_OFFSET }
    }

    /// Feeds bytes through the FNV-1a round.
    pub fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The [`mix64`]-finalized digest, ready for wrapping-sum combination.
    pub fn finish(self) -> u64 {
        mix64(self.state)
    }
}

/// Digest of a telemetry snapshot's *counter* section: the sorted
/// `(name, value)` pairs fed through one [`TrialDigest`]. Counters merge
/// exactly (wrapping addition of per-trial increments), so a serial
/// run's digest equals the digest of its shards' merged snapshots for
/// any shard count — the "sharded == serial" guarantee extended from
/// trial outcomes to telemetry.
///
/// Gauges and histograms are deliberately excluded: span histograms
/// carry wall-clock nanoseconds, which no two runs reproduce. (Counters
/// that record environment-dependent quantities — e.g. `.allocs` from
/// per-shard pool warm-ups under a counting allocator — are likewise
/// shard-dependent; the digest is only as stable as the counters fed
/// into it.)
pub fn metrics_digest(snapshot: &MetricsSnapshot) -> u64 {
    let mut d = TrialDigest::new();
    for c in &snapshot.counters {
        d.eat(c.name.as_bytes());
        // Name terminator: ("ab", …) must not collide with ("a", …).
        d.eat(&[0]);
        d.eat(&c.value.to_le_bytes());
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerge_obs::metrics::{CounterSnap, HistogramSnap, HIST_BUCKETS};

    #[test]
    fn shard_ranges_partition_contiguously() {
        for (trials, shards) in [(10, 3), (7, 7), (5, 9), (1, 1), (0, 4), (1000, 16)] {
            let ranges = shard_ranges(trials, shards);
            assert_eq!(ranges.len(), shards.max(1), "one range per shard");
            let mut next = 0;
            for &(start, count) in &ranges {
                assert_eq!(start, next, "ranges must be contiguous");
                next = start + count;
            }
            assert_eq!(next, trials, "ranges must cover every trial");
            let sizes: Vec<usize> = ranges.iter().map(|&(_, c)| c).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal split: {sizes:?}");
        }
        assert_eq!(shard_ranges(5, 0), vec![(0, 5)], "0 shards clamps to 1");
    }

    #[test]
    fn more_shards_than_trials_yields_empty_tail_ranges() {
        // A fixed worker fleet gets one range each; the surplus workers
        // receive empty `(trials, 0)` ranges that merge as the identity.
        assert_eq!(
            shard_ranges(3, 8),
            vec![
                (0, 1),
                (1, 1),
                (2, 1),
                (3, 0),
                (3, 0),
                (3, 0),
                (3, 0),
                (3, 0)
            ]
        );
        assert_eq!(shard_ranges(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
    }

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        let digest_of = |chunks: &[&[u8]]| {
            let mut d = TrialDigest::new();
            for c in chunks {
                d.eat(c);
            }
            d.finish()
        };
        assert_eq!(digest_of(&[b"abc"]), digest_of(&[b"abc"]));
        // FNV-1a is a pure byte stream: chunking must not matter...
        assert_eq!(digest_of(&[b"ab", b"c"]), digest_of(&[b"abc"]));
        // ...but content must.
        assert_ne!(digest_of(&[b"abc"]), digest_of(&[b"abd"]));
        // The empty digest is the mixed offset basis, not zero.
        assert_eq!(digest_of(&[]), TrialDigest::new().finish());
        assert_ne!(digest_of(&[]), 0);
    }

    #[test]
    fn metrics_digest_tracks_counters_and_ignores_timing() {
        let snap = |pairs: &[(&str, u64)]| MetricsSnapshot {
            counters: pairs
                .iter()
                .map(|&(name, value)| CounterSnap {
                    name: name.into(),
                    value,
                })
                .collect(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        let a = snap(&[("trial.execute.calls", 12), ("package.seal.bytes", 9_000)]);
        assert_eq!(metrics_digest(&a), metrics_digest(&a.clone()));
        // Value-sensitive and name-sensitive.
        assert_ne!(
            metrics_digest(&a),
            metrics_digest(&snap(&[
                ("trial.execute.calls", 13),
                ("package.seal.bytes", 9_000)
            ]))
        );
        assert_ne!(
            metrics_digest(&a),
            metrics_digest(&snap(&[
                ("trial.execute.call", 12),
                ("package.seal.bytes", 9_000)
            ]))
        );
        // Merging two shards reproduces the serial digest: counters add.
        let mut merged = snap(&[("trial.execute.calls", 5), ("package.seal.bytes", 4_000)]);
        merged.merge(&snap(&[
            ("trial.execute.calls", 7),
            ("package.seal.bytes", 5_000),
        ]));
        assert_eq!(metrics_digest(&merged), metrics_digest(&a));
        // Histograms never perturb the digest (they hold wall-clock time).
        let mut with_hist = a.clone();
        with_hist.histograms = vec![HistogramSnap {
            name: "trial.execute".into(),
            count: 12,
            sum: 123_456_789,
            min: 1,
            max: 99_999_999,
            buckets: [0; HIST_BUCKETS],
        }];
        assert_eq!(metrics_digest(&with_hist), metrics_digest(&a));
    }

    #[test]
    fn mix64_diffuses_counter_inputs() {
        // Adjacent inputs (the failure mode of raw FNV in a wrapping sum)
        // land far apart after finalization.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16, "adjacent inputs must diffuse");
    }
}
