//! The discrete-event engine: a virtual clock plus a stable priority queue.
//!
//! The engine is deliberately minimal: it owns *when* things happen, while
//! the caller owns *what* happens. The driving loop lives in caller code:
//!
//! ```
//! use emerge_sim::engine::Engine;
//! use emerge_sim::time::SimDuration;
//!
//! enum Ev { Tick(u64) }
//! struct World { ticks_seen: u64 }
//!
//! let mut engine = Engine::new();
//! let mut world = World { ticks_seen: 0 };
//! engine.schedule_in(SimDuration::from_ticks(1), Ev::Tick(1));
//!
//! while let Some((now, ev)) = engine.pop() {
//!     match ev {
//!         Ev::Tick(n) => {
//!             world.ticks_seen += 1;
//!             if n < 3 {
//!                 engine.schedule_in(SimDuration::from_ticks(1), Ev::Tick(n + 1));
//!             }
//!         }
//!     }
//!     let _ = now;
//! }
//! assert_eq!(world.ticks_seen, 3);
//! ```

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queued for execution at a specific instant.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event,
// breaking ties by insertion sequence so simulation runs are reproducible.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

/// A deterministic discrete-event scheduler over events of type `E`.
pub struct Engine<E> {
    clock: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            processed: 0,
        }
    }

    /// The current simulated instant (the timestamp of the last popped
    /// event, or zero before any event ran).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed (popped) so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — events cannot rewrite history.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        // LINT-WAIVER(panic): documented # Panics contract: events cannot be scheduled in the past
        assert!(
            at >= self.clock,
            "cannot schedule event in the past: now={}, requested={}",
            self.clock,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.clock + delay, event);
    }

    /// Pops the earliest pending event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.queue.pop()?;
        debug_assert!(scheduled.at >= self.clock, "event queue went backwards");
        self.clock = scheduled.at;
        self.processed += 1;
        Some((scheduled.at, scheduled.event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    ///
    /// Lets callers run a simulation in bounded windows ("run until tr").
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.queue.peek().map(|s| s.at <= horizon) == Some(true) {
            self.pop()
        } else {
            None
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.at)
    }

    /// Discards all pending events (used by tests and trial resets).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.clock)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(30), "c");
        e.schedule_at(SimTime::from_ticks(10), "a");
        e.schedule_at(SimTime::from_ticks(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| e.pop().map(|(_, ev)| ev)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        for i in 0..100 {
            e.schedule_at(SimTime::from_ticks(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| e.pop().map(|(_, ev)| ev)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(7), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_ticks(7));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(10), 1);
        e.pop();
        e.schedule_at(SimTime::from_ticks(5), 2);
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(5), "early");
        e.schedule_at(SimTime::from_ticks(15), "late");
        assert_eq!(e.pop_until(SimTime::from_ticks(10)).unwrap().1, "early");
        assert!(e.pop_until(SimTime::from_ticks(10)).is_none());
        // The late event is still there.
        assert_eq!(e.pending(), 1);
        assert_eq!(e.pop().unwrap().1, "late");
    }

    #[test]
    fn cascading_events() {
        // Events scheduling further events, as the protocol does per hop.
        enum Ev {
            Hop(u32),
        }
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_ticks(10), Ev::Hop(0));
        let mut hops = Vec::new();
        while let Some((t, Ev::Hop(n))) = e.pop() {
            hops.push((t.ticks(), n));
            if n < 2 {
                e.schedule_in(SimDuration::from_ticks(10), Ev::Hop(n + 1));
            }
        }
        assert_eq!(hops, [(10, 0), (20, 1), (30, 2)]);
    }

    #[test]
    fn counters_track_activity() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(1), ());
        e.schedule_at(SimTime::from_ticks(2), ());
        assert_eq!(e.pending(), 2);
        e.pop();
        assert_eq!(e.events_processed(), 1);
        e.clear();
        assert_eq!(e.pending(), 0);
    }

    proptest! {
        #[test]
        fn pop_sequence_is_sorted(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut e = Engine::new();
            for &t in &times {
                e.schedule_at(SimTime::from_ticks(t), t);
            }
            let mut last = 0u64;
            while let Some((t, _)) = e.pop() {
                prop_assert!(t.ticks() >= last);
                last = t.ticks();
            }
            prop_assert_eq!(e.events_processed(), times.len() as u64);
        }
    }
}
