//! # emerge-sim
//!
//! A small, deterministic discrete-event simulation engine. This is the
//! substrate beneath the DHT and the self-emerging key-routing protocol:
//! the paper evaluates on the Overlay Weaver DHT *emulator*; this crate (plus
//! `emerge-dht`) plays that role here.
//!
//! Design goals:
//!
//! * **Determinism** — identical seeds produce identical runs. The event
//!   queue breaks timestamp ties by insertion sequence; all randomness flows
//!   from labelled [`rng`] streams forked off one root seed.
//! * **No global state** — an [`engine::Engine`] is an ordinary value; tests
//!   can run thousands of independent simulations in parallel.
//! * **Separation of clock and logic** — the engine owns time and the event
//!   queue; domain state lives outside and handles popped events, so there
//!   are no borrow-checker acrobatics and no `Rc<RefCell>` webs.
//!
//! ```
//! use emerge_sim::engine::Engine;
//! use emerge_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_in(SimDuration::from_ticks(5), Ev::Ping(1));
//! engine.schedule_at(SimTime::from_ticks(2), Ev::Ping(0));
//!
//! let (t, ev) = engine.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ticks(2), Ev::Ping(0)));
//! let (t, ev) = engine.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ticks(5), Ev::Ping(1)));
//! assert!(engine.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod engine;
pub mod metrics;
pub mod rng;
pub mod shard;
pub mod time;

pub use engine::Engine;
pub use time::{SimDuration, SimTime};
