//! Virtual time for the simulation: instants and durations in abstract
//! integer "ticks".
//!
//! The paper works with abstract times (`ts`, `tr`, holding period
//! `th = T / l`, node mean lifetime `tlife`); the simulation does not need
//! wall-clock units, only a totally ordered, overflow-checked clock. One
//! tick can be interpreted as e.g. one second without loss of generality.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in ticks since the start of the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        // LINT-WAIVER(panic): documented # Panics contract: since requires an earlier timestamp
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Divides the duration into `n` equal parts, rounding down.
    ///
    /// This is how the holding period `th = T / l` is computed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn div_exactly(self, n: u64) -> SimDuration {
        // LINT-WAIVER(panic): documented # Panics contract: cannot divide into zero parts
        assert!(n > 0, "cannot divide a duration into zero parts");
        SimDuration(self.0 / n)
    }

    /// The ratio of two durations as an `f64` (used for churn math like
    /// `th / tlife`).
    pub fn ratio(self, other: SimDuration) -> f64 {
        // LINT-WAIVER(panic): documented # Panics contract: the ratio denominator must be positive
        assert!(other.0 > 0, "ratio denominator must be positive");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // LINT-WAIVER(panic): tick-line overflow means the schedule horizon is broken and must abort loudly
                .expect("SimTime overflow: schedule horizon exceeded u64 ticks"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // LINT-WAIVER(panic): tick-line underflow means the schedule horizon is broken and must abort loudly
                .expect("SimTime underflow: subtracted past time zero"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // LINT-WAIVER(panic): tick-line overflow means the schedule horizon is broken and must abort loudly
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // LINT-WAIVER(panic): tick-line underflow means the schedule horizon is broken and must abort loudly
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        // LINT-WAIVER(panic): tick-line overflow means the schedule horizon is broken and must abort loudly
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        self.div_exactly(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let t0 = SimTime::from_ticks(10);
        let d = SimDuration::from_ticks(5);
        assert_eq!(t0 + d, SimTime::from_ticks(15));
        assert_eq!((t0 + d).since(t0), d);
        assert_eq!(t0 - d, SimTime::from_ticks(5));
        assert_eq!(d + d, SimDuration::from_ticks(10));
        assert_eq!(d * 3, SimDuration::from_ticks(15));
        assert_eq!(SimDuration::from_ticks(17) / 5, SimDuration::from_ticks(3));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::ZERO < SimDuration::from_ticks(1));
    }

    #[test]
    fn ratio_math() {
        let th = SimDuration::from_ticks(250);
        let tlife = SimDuration::from_ticks(1000);
        let r = th.ratio(tlife);
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::from_ticks(1) - SimDuration::from_ticks(2);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_wrong_order_panics() {
        let _ = SimTime::from_ticks(1).since(SimTime::from_ticks(2));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(
            SimTime::from_ticks(3).saturating_sub(SimDuration::from_ticks(10)),
            SimTime::ZERO
        );
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(SimTime::from_ticks(7).to_string(), "t=7");
        assert_eq!(SimDuration::from_ticks(7).to_string(), "7 ticks");
    }
}
