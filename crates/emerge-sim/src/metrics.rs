//! Lightweight metrics for simulation experiments: counters, summary
//! statistics, and (x, series-of-y) tables that print in the same shape as
//! the paper's figures.

use std::collections::BTreeMap;
use std::fmt;

/// Running summary statistics (count, mean, variance via Welford, min/max).
#[derive(Debug, Clone)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`Summary::new`]. A derived `Default` would zero the min/max
/// sentinels, silently clamping `min()` to at most `0.0` for every
/// default-constructed results struct.
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; 0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of a ~95% confidence interval for the mean (normal
    /// approximation, z = 1.96).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.stderr()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Decomposes the summary into its raw internal state
    /// `(count, mean, m2, min, max)`, *without* the empty-summary
    /// accessor guards: an empty summary reports `min = +inf`,
    /// `max = -inf` here (where [`Summary::min`] would report NaN).
    ///
    /// Intended for exact serialization: ship the five fields (floats as
    /// [`f64::to_bits`] patterns) and rebuild with
    /// [`Summary::from_raw_parts`] for a bit-identical round trip — the
    /// property the distributed sweep wire format relies on.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds a summary from [`Summary::raw_parts`] output. The fields
    /// are trusted verbatim; feeding values that never came from a real
    /// summary yields a well-formed but statistically meaningless value,
    /// never unsafety.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Summary {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A Bernoulli estimator: success counts over trials, as used for the
/// resilience probabilities `Rr` and `Rd` (fraction of trials on which the
/// adversary *failed*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rate {
    successes: u64,
    trials: u64,
}

impl Rate {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Rate::default()
    }

    /// Records one trial outcome.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Rebuilds an estimator from recorded counts, for exact
    /// deserialization of a shipped [`Rate`]. Returns `None` when
    /// `successes > trials`, which no sequence of [`Rate::record`] calls
    /// can produce.
    pub fn from_counts(successes: u64, trials: u64) -> Option<Self> {
        if successes > trials {
            None
        } else {
            Some(Rate { successes, trials })
        }
    }

    /// The estimated probability (NaN with zero trials).
    pub fn value(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// ~95% confidence half-width via the normal approximation.
    pub fn ci95_half_width(&self) -> f64 {
        if self.trials == 0 {
            return f64::NAN;
        }
        let p = self.value();
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Merges another estimator into this one. Counter addition is exact
    /// and associative, so any merge tree over disjoint trial batches
    /// yields the same estimator as recording every trial serially.
    pub fn merge(&mut self, other: &Rate) {
        self.successes += other.successes;
        self.trials += other.trials;
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ({}/{})",
            self.value(),
            self.successes,
            self.trials
        )
    }
}

/// A figure-shaped table: one x column, several named y series.
///
/// Printing produces gnuplot-style whitespace-separated columns, matching
/// how the paper's figures are laid out (x = `p`, series = schemes).
#[derive(Debug, Clone, Default)]
pub struct SeriesTable {
    /// Column names, in insertion order (x column first).
    columns: Vec<String>,
    /// Rows keyed by the x value scaled to an integer key for ordering.
    rows: BTreeMap<i64, Vec<f64>>,
    /// Scale used to convert x to the integer key.
    x_scale: f64,
}

impl SeriesTable {
    /// Creates a table with the given x-column name and series names.
    pub fn new(x_name: &str, series: &[&str]) -> Self {
        let mut columns = vec![x_name.to_string()];
        columns.extend(series.iter().map(|s| s.to_string()));
        SeriesTable {
            columns,
            rows: BTreeMap::new(),
            x_scale: 1e9,
        }
    }

    /// Inserts a full row: x plus one value per series.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of series.
    pub fn push_row(&mut self, x: f64, values: &[f64]) {
        // LINT-WAIVER(panic): documented # Panics contract: row width must match the series count
        assert_eq!(
            values.len(),
            self.columns.len() - 1,
            "row width {} does not match series count {}",
            values.len(),
            self.columns.len() - 1
        );
        let key = (x * self.x_scale).round() as i64;
        let mut row = Vec::with_capacity(values.len() + 1);
        row.push(x);
        row.extend_from_slice(values);
        self.rows.insert(key, row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in x order. Each row starts with x.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<f64>> {
        self.rows.values()
    }

    /// Looks up the row at `x` (exact within rounding scale).
    pub fn row_at(&self, x: f64) -> Option<&Vec<f64>> {
        self.rows.get(&((x * self.x_scale).round() as i64))
    }

    /// Column names (x first).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }
}

impl fmt::Display for SeriesTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "# {}", self.columns.join("\t"))?;
        for row in self.rows.values() {
            writeln!(f)?;
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
            write!(f, "{}", cells.join("\t"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn default_summary_tracks_min_like_new() {
        // The derived Default used to start min at 0.0, clamping min() to
        // at most zero for every default-constructed results struct.
        let mut s = Summary::default();
        s.record(600.0);
        s.record(700.0);
        assert_eq!(s.min(), 600.0);
        assert_eq!(s.max(), 700.0);
    }

    #[test]
    fn summary_raw_parts_round_trip_is_bit_exact() {
        let mut s = Summary::new();
        for x in [2.5, -17.0, 0.3333333333333333, 1e300] {
            s.record(x);
        }
        let (count, mean, m2, min, max) = s.raw_parts();
        let back = Summary::from_raw_parts(count, mean, m2, min, max);
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean().to_bits(), s.mean().to_bits());
        assert_eq!(back.variance().to_bits(), s.variance().to_bits());
        assert_eq!(back.min().to_bits(), s.min().to_bits());
        assert_eq!(back.max().to_bits(), s.max().to_bits());
        // Empty summaries keep their sentinels through the round trip, so
        // a rebuilt empty summary still merges as the identity.
        let (count, mean, m2, min, max) = Summary::new().raw_parts();
        assert_eq!(min, f64::INFINITY);
        assert_eq!(max, f64::NEG_INFINITY);
        let empty = Summary::from_raw_parts(count, mean, m2, min, max);
        let mut merged = empty;
        merged.merge(&s);
        assert_eq!(merged.min().to_bits(), s.min().to_bits());
        assert_eq!(merged.mean().to_bits(), s.mean().to_bits());
    }

    #[test]
    fn rate_from_counts_validates() {
        let r = Rate::from_counts(3, 4).unwrap();
        assert_eq!(r.successes(), 3);
        assert_eq!(r.trials(), 4);
        assert!(Rate::from_counts(5, 4).is_none());
        assert_eq!(Rate::from_counts(0, 0), Some(Rate::new()));
    }

    #[test]
    fn rate_estimates_probability() {
        let mut r = Rate::new();
        for i in 0..1000 {
            r.record(i % 4 != 0); // 75% success
        }
        assert!((r.value() - 0.75).abs() < 1e-12);
        assert!(r.ci95_half_width() < 0.03);
        assert_eq!(r.trials(), 1000);
        assert_eq!(r.successes(), 750);
    }

    #[test]
    fn rate_merge_equals_combined() {
        let mut whole = Rate::new();
        let mut left = Rate::new();
        let mut right = Rate::new();
        for i in 0..100 {
            let outcome = i % 3 == 0;
            whole.record(outcome);
            if i < 42 {
                left.record(outcome);
            } else {
                right.record(outcome);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        let mut empty = Rate::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn rate_display() {
        let mut r = Rate::new();
        r.record(true);
        r.record(false);
        assert_eq!(r.to_string(), "0.5000 (1/2)");
    }

    #[test]
    fn series_table_round_trips_rows() {
        let mut t = SeriesTable::new("p", &["central", "disjoint", "joint"]);
        t.push_row(0.1, &[0.9, 0.99, 0.999]);
        t.push_row(0.0, &[1.0, 1.0, 1.0]);
        assert_eq!(t.len(), 2);
        // Rows iterate in x order regardless of insertion order.
        let xs: Vec<f64> = t.iter().map(|r| r[0]).collect();
        assert_eq!(xs, [0.0, 0.1]);
        assert_eq!(t.row_at(0.1).unwrap()[2], 0.99);
        assert!(t.row_at(0.05).is_none());
    }

    #[test]
    fn series_table_display_has_header_and_rows() {
        let mut t = SeriesTable::new("p", &["R"]);
        t.push_row(0.25, &[0.75]);
        let out = t.to_string();
        assert!(out.starts_with("# p\tR"));
        assert!(out.contains("0.250000\t0.750000"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_row_width_panics() {
        let mut t = SeriesTable::new("p", &["a", "b"]);
        t.push_row(0.0, &[1.0]);
    }
}
