//! Deterministic, labelled randomness for simulations.
//!
//! All randomness in a simulation flows from one root seed. Components ask
//! for *named streams* (`seed.stream("churn")`, `seed.stream("holder-ids")`)
//! so that adding a new consumer of randomness does not perturb existing
//! streams — a property the reproducibility tests rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A root seed from which independent named RNG streams are forked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSource {
    seed: u64,
}

impl SeedSource {
    /// Creates a seed source from a root seed.
    pub fn new(seed: u64) -> Self {
        SeedSource { seed }
    }

    /// The root seed value.
    pub fn root(&self) -> u64 {
        self.seed
    }

    /// Forks an independent RNG stream identified by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream, and
    /// distinct labels yield (statistically) independent streams.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, label.as_bytes()))
    }

    /// Forks a stream identified by a label and a numeric discriminator
    /// (e.g. a trial index or node index).
    pub fn stream_n(&self, label: &str, n: u64) -> StdRng {
        let base = mix(self.seed, label.as_bytes());
        StdRng::seed_from_u64(splitmix64(base ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Derives a child seed source (for nested components that fork their
    /// own sub-streams).
    pub fn child(&self, label: &str) -> SeedSource {
        SeedSource {
            seed: mix(self.seed, label.as_bytes()),
        }
    }
}

/// SplitMix64 finalizer — a well-tested 64-bit mixer (Vigna 2015).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a label into a seed, one byte at a time through SplitMix64.
fn mix(seed: u64, label: &[u8]) -> u64 {
    let mut acc = splitmix64(seed);
    for &b in label {
        acc = splitmix64(acc ^ b as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_label_same_stream() {
        let s = SeedSource::new(42);
        let mut a = s.stream("alpha");
        let mut b = s.stream("alpha");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let s = SeedSource::new(42);
        let mut a = s.stream("alpha");
        let mut b = s.stream("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SeedSource::new(1).stream("x");
        let mut b = SeedSource::new(2).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn numeric_discriminator_separates_streams() {
        let s = SeedSource::new(7);
        let mut a = s.stream_n("trial", 0);
        let mut b = s.stream_n("trial", 1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = s.stream_n("trial", 0);
        assert_eq!(
            {
                let mut fresh = s.stream_n("trial", 0);
                fresh.next_u64()
            },
            a2.next_u64()
        );
    }

    #[test]
    fn child_seeds_are_stable_and_distinct() {
        let s = SeedSource::new(99);
        assert_eq!(s.child("dht"), s.child("dht"));
        assert_ne!(s.child("dht"), s.child("cloud"));
        assert_ne!(s.child("dht").root(), s.root());
    }

    #[test]
    fn splitmix_known_value() {
        // First output of SplitMix64 seeded with 0 (reference value from
        // Vigna's reference implementation).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn label_prefix_collision_resistance() {
        // "ab" + "c" must differ from "a" + "bc" style concatenations.
        let s = SeedSource::new(5);
        let mut streams = [
            s.stream("abc"),
            s.child("ab").stream("c"),
            s.child("a").stream("bc"),
        ];
        let outs: Vec<u64> = streams.iter_mut().map(|r| r.next_u64()).collect();
        assert_ne!(outs[0], outs[1]);
        assert_ne!(outs[1], outs[2]);
        assert_ne!(outs[0], outs[2]);
    }
}
