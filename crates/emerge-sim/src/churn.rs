//! Churn models: node lifetimes, deaths and transient unavailability.
//!
//! The paper (citing Bhagwan et al., "Replication strategies for highly
//! available peer-to-peer storage") models node death as an exponential
//! decay process: the probability that a node dies within a holding period
//! `th` is `pdead = 1 − e^(−th/λ)` where `λ` is the mean node lifetime.
//! This module provides exponential sampling plus the two churn flavours
//! discussed in Section II-C:
//!
//! * **node death** — permanent departure; stored state is lost (or handed
//!   to a replacement node by DHT replication),
//! * **node unavailability** — transient departure and return, modelled as
//!   an ON/OFF alternating renewal process.

use crate::time::SimDuration;
use rand::Rng;

/// Exponential distribution with a given mean, sampled by inverse CDF.
///
/// Implemented locally (instead of pulling in `rand_distr`) to keep the
/// dependency set minimal; the inverse-CDF method is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean (`λ` in the
    /// paper's notation — note the paper uses λ for the *mean*, not the
    /// rate).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        // LINT-WAIVER(panic): documented # Panics contract: the churn mean must be positive and finite
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        Exponential { mean }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -mean * ln(U) with U in (0, 1].
        // gen::<f64>() yields [0,1); use 1-u to exclude 0 for ln.
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }

    /// Samples a duration in whole ticks (rounded to nearest, minimum 1).
    pub fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let v = self.sample(rng).round().max(1.0);
        // Clamp to u64 range; astronomically unlikely to matter.
        let ticks = if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        };
        SimDuration::from_ticks(ticks)
    }

    /// The probability that an event occurs within `window`, i.e.
    /// `1 − e^(−window/mean)` — the paper's `pdead` for `window = th`.
    pub fn prob_within(&self, window: SimDuration) -> f64 {
        1.0 - (-(window.ticks() as f64) / self.mean).exp()
    }
}

/// Lifetime model for DHT nodes: exponential death clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeModel {
    dist: Exponential,
}

impl LifetimeModel {
    /// Creates a lifetime model with mean lifetime `tlife` (in ticks).
    pub fn new(tlife: SimDuration) -> Self {
        LifetimeModel {
            dist: Exponential::with_mean(tlife.ticks() as f64),
        }
    }

    /// Mean lifetime in ticks.
    pub fn mean_lifetime(&self) -> f64 {
        self.dist.mean()
    }

    /// Samples a node's remaining lifetime. By the memoryless property this
    /// is valid at any observation instant, which is why the per-holding-
    /// period death probability is simply `1 − e^(−th/λ)` regardless of how
    /// long the node has already been alive.
    pub fn sample_lifetime<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        self.dist.sample_duration(rng)
    }

    /// Probability a node dies within the window (the paper's `pdead`).
    pub fn death_probability(&self, window: SimDuration) -> f64 {
        self.dist.prob_within(window)
    }

    /// Draws whether a node dies within the window.
    pub fn dies_within<R: Rng + ?Sized>(&self, window: SimDuration, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.death_probability(window)
    }

    /// Samples the number of deaths-and-replacements of a continuously
    /// replicated slot over `window`: the count of renewals of an
    /// exponential process, which is Poisson(window/λ) in expectation.
    ///
    /// Used by the churn model for the first three schemes, where every
    /// death hands the stored key to a fresh (possibly malicious) node.
    pub fn sample_replacements<R: Rng + ?Sized>(&self, window: SimDuration, rng: &mut R) -> u32 {
        let mut remaining = window.ticks() as f64;
        let mut count = 0u32;
        loop {
            let life = self.dist.sample(rng);
            if life >= remaining {
                return count;
            }
            remaining -= life;
            count += 1;
            // Guard against pathological parameter choices.
            if count == u32::MAX {
                return count;
            }
        }
    }
}

/// ON/OFF availability model for transient departures (Section II-C's
/// "node unavailability").
///
/// A node alternates between available periods (mean `mean_up`) and
/// unavailable periods (mean `mean_down`), both exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityModel {
    up: Exponential,
    down: Exponential,
}

impl AvailabilityModel {
    /// Creates a model with the given mean up and down durations.
    pub fn new(mean_up: SimDuration, mean_down: SimDuration) -> Self {
        AvailabilityModel {
            up: Exponential::with_mean(mean_up.ticks() as f64),
            down: Exponential::with_mean(mean_down.ticks() as f64),
        }
    }

    /// Long-run fraction of time the node is available:
    /// `mean_up / (mean_up + mean_down)`.
    pub fn steady_state_availability(&self) -> f64 {
        self.up.mean() / (self.up.mean() + self.down.mean())
    }

    /// Samples the next up-period duration.
    pub fn sample_up<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        self.up.sample_duration(rng)
    }

    /// Samples the next down-period duration.
    pub fn sample_down<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        self.down.sample_duration(rng)
    }

    /// Draws whether the node is available at a uniformly random instant
    /// (steady state).
    pub fn is_available_now<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.steady_state_availability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSource;

    #[test]
    fn exponential_mean_converges() {
        let dist = Exponential::with_mean(100.0);
        let mut rng = SeedSource::new(1).stream("exp");
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 100.0).abs() < 2.0,
            "sample mean {mean} too far from 100"
        );
    }

    #[test]
    fn prob_within_matches_closed_form() {
        let dist = Exponential::with_mean(1000.0);
        let p = dist.prob_within(SimDuration::from_ticks(1000));
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // And empirically.
        let mut rng = SeedSource::new(2).stream("exp");
        let n = 100_000;
        let hits = (0..n).filter(|_| dist.sample(&mut rng) < 1000.0).count();
        let emp = hits as f64 / n as f64;
        assert!((emp - p).abs() < 0.01, "empirical {emp} vs analytic {p}");
    }

    #[test]
    fn death_probability_monotone_in_window() {
        let m = LifetimeModel::new(SimDuration::from_ticks(500));
        let p1 = m.death_probability(SimDuration::from_ticks(100));
        let p2 = m.death_probability(SimDuration::from_ticks(200));
        let p5 = m.death_probability(SimDuration::from_ticks(500));
        assert!(0.0 < p1 && p1 < p2 && p2 < p5 && p5 < 1.0);
    }

    #[test]
    fn replacements_mean_is_window_over_lambda() {
        // Renewal process: E[count over window] = window / mean lifetime.
        let m = LifetimeModel::new(SimDuration::from_ticks(100));
        let mut rng = SeedSource::new(3).stream("repl");
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| m.sample_replacements(SimDuration::from_ticks(300), &mut rng) as u64)
            .sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 3.0).abs() < 0.1,
            "mean replacements {mean}, expected ~3"
        );
    }

    #[test]
    fn availability_steady_state() {
        let a = AvailabilityModel::new(SimDuration::from_ticks(900), SimDuration::from_ticks(100));
        assert!((a.steady_state_availability() - 0.9).abs() < 1e-12);
        let mut rng = SeedSource::new(4).stream("avail");
        let n = 50_000;
        let up = (0..n).filter(|_| a.is_available_now(&mut rng)).count();
        let frac = up as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01);
    }

    #[test]
    fn sample_duration_is_at_least_one_tick() {
        let dist = Exponential::with_mean(0.001);
        let mut rng = SeedSource::new(5).stream("tiny");
        for _ in 0..100 {
            assert!(dist.sample_duration(&mut rng).ticks() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mean_rejected() {
        let _ = Exponential::with_mean(0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LifetimeModel::new(SimDuration::from_ticks(1000));
        let mut a = SeedSource::new(9).stream("life");
        let mut b = SeedSource::new(9).stream("life");
        for _ in 0..32 {
            assert_eq!(m.sample_lifetime(&mut a), m.sample_lifetime(&mut b));
        }
    }
}
