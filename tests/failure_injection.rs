//! Failure injection: lossy networks, mass departures, tampered packages.

use self_emerging_data::core::config::SchemeParams;
use self_emerging_data::core::package::{build_keyed_packages, KeySchedule};
use self_emerging_data::core::path::construct_paths;
use self_emerging_data::core::protocol::{execute_keyed, AttackMode, RunConfig};
use self_emerging_data::crypto::keys::SymmetricKey;
use self_emerging_data::crypto::onion;
use self_emerging_data::dht::id::NodeId;
use self_emerging_data::dht::network::NetworkConfig;
use self_emerging_data::dht::overlay::{Overlay, OverlayConfig};
use self_emerging_data::sim::time::{SimDuration, SimTime};

#[test]
fn lookups_survive_heavy_message_loss() {
    let mut overlay = Overlay::build(
        OverlayConfig {
            n_nodes: 256,
            network: NetworkConfig {
                latency_min: 5,
                latency_max: 50,
                drop_probability: 0.25,
            },
            ..OverlayConfig::default()
        },
        1,
    );
    overlay.build_routing_tables();

    let mut found_best = 0;
    let total = 30;
    for i in 0..total {
        let target = NodeId::from_name(format!("lossy-{i}").as_bytes());
        let truth = overlay.initial(overlay.resolve_holder(&target)).id;
        let outcome = overlay.find_node(i % 200, target);
        if outcome.closest.first() == Some(&truth) {
            found_best += 1;
        }
        assert!(
            !outcome.closest.is_empty(),
            "even lossy lookups must return candidates"
        );
    }
    // 25% loss per message: most lookups still converge to the true
    // closest node thanks to retries through other contacts.
    assert!(
        found_best >= total * 2 / 3,
        "only {found_best}/{total} lossy lookups converged"
    );
    assert!(
        overlay.network().messages_dropped() > 0,
        "the drop model must actually fire"
    );
}

#[test]
fn mass_departure_degrades_but_does_not_crash_lookup() {
    let mut overlay = Overlay::build(
        OverlayConfig {
            n_nodes: 200,
            ..OverlayConfig::default()
        },
        2,
    );
    overlay.build_routing_tables();
    overlay.advance_to(SimTime::from_ticks(100));
    // Half the network leaves.
    for slot in (0..200).step_by(2) {
        overlay.leave(slot);
    }
    overlay.advance_to(SimTime::from_ticks(101));
    let outcome = overlay.find_node(1, NodeId::from_name(b"post-apocalypse"));
    assert!(outcome.timeouts > 0, "dead nodes must be observed");
    assert!(!outcome.closest.is_empty(), "survivors must still answer");
    for id in &outcome.closest {
        let slot = overlay.slot_of_id(id).unwrap();
        assert!(
            overlay.initial_alive_at(slot, overlay.now()),
            "results must exclude departed nodes"
        );
    }
}

#[test]
fn dead_terminal_column_loses_the_key_gracefully() {
    // Kill every terminal holder mid-run: the report must say the key was
    // lost rather than panic or release garbage.
    let params = SchemeParams::Joint { k: 2, l: 3 };
    let mut overlay = Overlay::build(
        OverlayConfig {
            n_nodes: 100,
            ..OverlayConfig::default()
        },
        3,
    );
    let sender = SymmetricKey::from_bytes([3; 32]);
    let plan = construct_paths(&overlay, &params, &sender).unwrap();
    let pkgs = build_keyed_packages(&plan, &params, &KeySchedule::new(sender), b"s").unwrap();

    // Leave happens before ts, so terminal holders never answer.
    for row in 0..2 {
        let slot = plan.slot(row, 2);
        overlay.leave(slot);
    }
    // NOTE: keyed-scheme holders hand over onions via replication, so a
    // pre-dead generation-0 node means its *replacement* would act. With
    // immortal generations the slot model has no replacement after
    // `leave`, so the onion truly dies with the terminal column in drop
    // semantics — but the default semantics re-home stored packages. What
    // must hold regardless: the run terminates and reports a coherent
    // outcome.
    let report = execute_keyed(
        &mut overlay,
        &plan,
        &params,
        &pkgs,
        &RunConfig {
            ts: SimTime::from_ticks(10),
            emerging_period: SimDuration::from_ticks(3_000),
            attack: AttackMode::Passive,
        },
    )
    .unwrap();
    assert!(
        report.released.is_some() || report.failure.is_some(),
        "run must end in exactly one coherent outcome"
    );
}

#[test]
fn tampered_onion_layers_are_rejected_not_misrouted() {
    let k1 = SymmetricKey::from_bytes([1; 32]);
    let k2 = SymmetricKey::from_bytes([2; 32]);
    let onion_bytes = onion::build_onion(&[(&k1, b"hop1"), (&k2, b"hop2")], b"secret");

    // Flip every byte position one at a time near the front and verify
    // authentication always fails (no partial acceptance).
    for pos in 0..24.min(onion_bytes.len()) {
        let mut tampered = onion_bytes.clone();
        tampered[pos] ^= 0x01;
        assert!(
            onion::peel(&k1, &tampered).is_err(),
            "tampering at byte {pos} must be detected"
        );
    }
}

#[test]
fn zero_capacity_network_blocks_everything() {
    let mut overlay = Overlay::build(
        OverlayConfig {
            n_nodes: 64,
            network: NetworkConfig {
                latency_min: 1,
                latency_max: 2,
                drop_probability: 0.999,
            },
            ..OverlayConfig::default()
        },
        4,
    );
    overlay.build_routing_tables();
    let outcome = overlay.find_node(0, NodeId::from_name(b"unreachable"));
    // With 99.9% loss the lookup mostly times out; it must still
    // terminate promptly.
    assert!(outcome.queried > 0);
    assert!(outcome.timeouts > 0);
}
