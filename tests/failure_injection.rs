//! Failure injection on the deterministic fault plane.
//!
//! Every scenario here is a seeded [`FaultPlan`]: the same seed compiles
//! the same schedule of loss bursts, crash storms, outages and tampering,
//! so each assertion replays bit-identically. Scenarios run against the
//! analytic *and* contract substrates through the same
//! `FaultySubstrate` wrapper, plus the contract-native bonded path where
//! crashes turn into slashing withholds. Two legacy probes survive from
//! the pre-fault-plane suite: the overlay's own lossy-network retries and
//! the onion AEAD tamper check, which guard layers the injector sits
//! above.

use self_emerging_data::contract::economy::{EconomyParams, HolderStrategy};
use self_emerging_data::contract::mc::run_bonded_trial_range_faulted;
use self_emerging_data::contract::release::BondedSpec;
use self_emerging_data::contract::substrate::{ContractConfig, ContractSubstrate};
use self_emerging_data::core::config::SchemeParams;
use self_emerging_data::core::faults::run_faulted_trials;
use self_emerging_data::core::montecarlo::ProtocolTrialSpec;
use self_emerging_data::core::protocol::AttackMode;
use self_emerging_data::crypto::keys::SymmetricKey;
use self_emerging_data::crypto::onion;
use self_emerging_data::dht::analytic::AnalyticSubstrate;
use self_emerging_data::dht::id::NodeId;
use self_emerging_data::dht::network::NetworkConfig;
use self_emerging_data::dht::overlay::{Overlay, OverlayConfig};
use self_emerging_data::faults::{
    FaultEvent, FaultKind, FaultPlan, RecoveryPolicy, Scenario, PPM_SCALE,
};
use self_emerging_data::sim::time::{SimDuration, SimTime};

/// The protocol's active window: fault plans are compiled over the
/// emerging period plus headroom, not the world horizon, so the burst
/// actually overlaps the trials.
const PLAN_HORIZON: u64 = 4_000;

fn spec() -> ProtocolTrialSpec {
    ProtocolTrialSpec {
        params: SchemeParams::Share {
            k: 2,
            l: 3,
            n: 6,
            m: vec![3, 3],
        },
        emerging_period: SimDuration::from_ticks(3_000),
        attack: AttackMode::ReleaseAhead,
    }
}

fn world() -> OverlayConfig {
    OverlayConfig {
        n_nodes: 150,
        malicious_fraction: 0.2,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    }
}

fn analytic(seed: u64) -> AnalyticSubstrate {
    AnalyticSubstrate::build(world(), seed)
}

fn contract(seed: u64) -> ContractSubstrate {
    ContractSubstrate::build(ContractConfig::over(world()), seed)
}

#[test]
fn seeded_loss_burst_replays_bit_identically_on_both_substrates() {
    let plan = Scenario::LossBurst.plan(400_000, PLAN_HORIZON, 11);
    let policy = RecoveryPolicy::default();
    for factory in [analytic, analytic] {
        let a = run_faulted_trials(&spec(), &plan, policy, 25, 3, factory).unwrap();
        let b = run_faulted_trials(&spec(), &plan, policy, 25, 3, factory).unwrap();
        assert_eq!(a.base.fingerprint, b.base.fingerprint);
        assert_eq!(a.fault_fingerprint, b.fault_fingerprint);
        assert_eq!(a.disruptions.count(), b.disruptions.count());
    }
    let c1 = run_faulted_trials(&spec(), &plan, policy, 25, 3, contract).unwrap();
    let c2 = run_faulted_trials(&spec(), &plan, policy, 25, 3, contract).unwrap();
    assert_eq!(c1.base.fingerprint, c2.base.fingerprint);
    assert_eq!(c1.fault_fingerprint, c2.fault_fingerprint);
    assert!(
        c1.disrupted.successes() > 0,
        "a 40% loss burst must actually disrupt"
    );
}

#[test]
fn recovery_policy_beats_brittle_under_a_crash_storm() {
    let plan = Scenario::CrashStorm.plan(500_000, PLAN_HORIZON, 7);
    let recovering =
        run_faulted_trials(&spec(), &plan, RecoveryPolicy::default(), 40, 5, analytic).unwrap();
    let brittle =
        run_faulted_trials(&spec(), &plan, RecoveryPolicy::brittle(), 40, 5, analytic).unwrap();
    assert!(
        recovering.base.released.successes() >= brittle.base.released.successes(),
        "hedged retries must not lose to give-up-immediately ({} vs {})",
        recovering.base.released.successes(),
        brittle.base.released.successes()
    );
    assert!(
        recovering.disrupted.successes() > 0,
        "the storm must actually disrupt"
    );
    // Degraded successes are reported apart from clean ones and the two
    // exactly partition the released trials.
    assert_eq!(
        recovering.degraded.successes() + recovering.clean_of_faults.successes(),
        recovering.base.released.successes()
    );
}

#[test]
fn correlated_outage_degrades_gracefully_under_m_of_n() {
    // A sixth of all slots go dark for the middle of the window. The
    // share scheme only needs k-of-m columns, so the release rate bends
    // instead of collapsing — and some successes are degraded ones.
    let plan = Scenario::CorrelatedOutage.plan(160_000, PLAN_HORIZON, 13);
    let policy = RecoveryPolicy::default();
    let faulted = run_faulted_trials(&spec(), &plan, policy, 40, 9, analytic).unwrap();
    let plain = run_faulted_trials(&spec(), &FaultPlan::none(), policy, 40, 9, analytic).unwrap();
    assert!(faulted.disrupted.successes() > 0, "outage must fire");
    assert!(
        faulted.base.released.successes() > 0,
        "m-of-n headroom must survive a correlated outage"
    );
    assert!(
        faulted.base.released.successes() <= plain.base.released.successes(),
        "injected outages cannot help"
    );
}

#[test]
fn tamper_storm_loses_values_but_never_misroutes_them() {
    // Tampered find_value results fail AEAD authentication downstream;
    // what must never happen is a tampered value being *accepted*. At the
    // MC level that shows up as suppressed releases, never as garbage
    // releases or panics.
    let plan = Scenario::Tamper.plan(PPM_SCALE, PLAN_HORIZON, 17);
    let r =
        run_faulted_trials(&spec(), &plan, RecoveryPolicy::default(), 25, 21, analytic).unwrap();
    assert_eq!(r.base.released.trials(), 25);
    assert_eq!(
        r.degraded.successes() + r.clean_of_faults.successes(),
        r.base.released.successes()
    );
}

#[test]
fn crashed_bonded_holders_slash_exactly_their_bonds() {
    // Contract substrate, contract-native path: a total crash storm makes
    // every holder miss its reveal, and the escrow slashes exactly one
    // bond per corpse — fault injection must not bend the economics.
    let spec = BondedSpec {
        strategy: HolderStrategy::Compliant,
        ..BondedSpec::new(6, 4, SimDuration::from_ticks(1_000))
    };
    // An all-window plan: the block clock quantizes the reveal instant,
    // so a windowed scenario could miss it on some worlds and dilute the
    // exact-slash assertion.
    let plan = FaultPlan::new(
        23,
        vec![FaultEvent {
            from: SimTime::ZERO,
            to: SimTime::MAX,
            kind: FaultKind::CrashRestart {
                crash_ppm: PPM_SCALE,
            },
        }],
    );
    let r = run_bonded_trial_range_faulted(&spec, &plan, 0, 20, 29, |s| {
        ContractSubstrate::build(
            ContractConfig::over(OverlayConfig {
                n_nodes: 80,
                malicious_fraction: 0.0,
                ..OverlayConfig::default()
            }),
            s,
        )
    })
    .unwrap();
    assert_eq!(r.base.released.successes(), 0, "total storm starves quorum");
    assert!(r.disrupted.successes() > 0);
    let bond = EconomyParams::default().bond;
    assert_eq!(r.base.slashed.min(), (6 * bond) as f64);
    assert_eq!(r.base.slashed.max(), (6 * bond) as f64);
}

#[test]
fn legacy_probe_lookups_survive_heavy_message_loss() {
    let mut overlay = Overlay::build(
        OverlayConfig {
            n_nodes: 256,
            network: NetworkConfig {
                latency_min: 5,
                latency_max: 50,
                drop_probability: 0.25,
            },
            ..OverlayConfig::default()
        },
        1,
    );
    overlay.build_routing_tables();

    let mut found_best = 0;
    let total = 30;
    for i in 0..total {
        let target = NodeId::from_name(format!("lossy-{i}").as_bytes());
        let truth = overlay.initial(overlay.resolve_holder(&target)).id;
        let outcome = overlay.find_node(i % 200, target);
        if outcome.closest.first() == Some(&truth) {
            found_best += 1;
        }
        assert!(
            !outcome.closest.is_empty(),
            "even lossy lookups must return candidates"
        );
    }
    // 25% loss per message: most lookups still converge to the true
    // closest node thanks to retries through other contacts.
    assert!(
        found_best >= total * 2 / 3,
        "only {found_best}/{total} lossy lookups converged"
    );
    assert!(
        overlay.network().messages_dropped() > 0,
        "the drop model must actually fire"
    );
}

#[test]
fn legacy_probe_tampered_onion_layers_are_rejected_not_misrouted() {
    let k1 = SymmetricKey::from_bytes([1; 32]);
    let k2 = SymmetricKey::from_bytes([2; 32]);
    let onion_bytes = onion::build_onion(&[(&k1, b"hop1"), (&k2, b"hop2")], b"secret");

    // Flip every byte position one at a time near the front and verify
    // authentication always fails (no partial acceptance).
    for pos in 0..24.min(onion_bytes.len()) {
        let mut tampered = onion_bytes.clone();
        tampered[pos] ^= 0x01;
        assert!(
            onion::peel(&k1, &tampered).is_err(),
            "tampering at byte {pos} must be detected"
        );
    }
}
