//! The contract release substrate's workspace-level guarantees:
//!
//! 1. **Scheme portability** — all four key-routing schemes run on
//!    `ContractSubstrate` unchanged, and produce *bit-identical*
//!    Monte-Carlo fingerprints to the analytic substrate and the full
//!    overlay (the chain layer never perturbs the DHT semantics).
//! 2. **Sharded == serial** — the sharded Monte-Carlo guarantee extends
//!    to the new substrate and to the contract-native bonded-release
//!    mode, for every shard and thread count (what CI's
//!    `EMERGE_MC_THREADS` matrix guards).
//! 3. **Economics invariants** — escrow conservation, no double-claim,
//!    and slash-only-on-misbehaviour, property-tested across seeds,
//!    malicious rates and adversary strategies.

use emerge_bench::mc::{run_bonded_trials_threaded, run_protocol_trials_threaded};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use self_emerging_data::contract::contract::HolderPhase;
use self_emerging_data::contract::economy::{EconomyParams, HolderStrategy};
use self_emerging_data::contract::mc::{
    run_bonded_trials, run_bonded_trials_sharded, BondedMcResults,
};
use self_emerging_data::contract::release::{run_bonded_release, BondedSpec};
use self_emerging_data::contract::substrate::{ContractConfig, ContractSubstrate};
use self_emerging_data::contract::ContractError;
use self_emerging_data::core::config::{SchemeKind, SchemeParams};
use self_emerging_data::core::montecarlo::{
    run_protocol_trials, run_protocol_trials_sharded, ProtocolTrialSpec,
};
use self_emerging_data::core::protocol::AttackMode;
use self_emerging_data::core::substrate::{AnalyticSubstrate, Overlay, OverlayConfig};
use self_emerging_data::sim::time::SimDuration;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn params_for(kind: SchemeKind) -> SchemeParams {
    match kind {
        SchemeKind::Central => SchemeParams::Central,
        SchemeKind::Disjoint => SchemeParams::Disjoint { k: 2, l: 3 },
        SchemeKind::Joint => SchemeParams::Joint { k: 2, l: 3 },
        SchemeKind::Share => SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![3, 3],
        },
    }
}

fn world(n: usize, p: f64) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: p,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    }
}

fn contract_factory(cfg: OverlayConfig) -> impl Fn(u64) -> ContractSubstrate + Sync {
    move |seed| ContractSubstrate::build(ContractConfig::over(cfg), seed)
}

#[test]
fn all_four_schemes_agree_with_the_other_substrates() {
    for kind in SchemeKind::ALL {
        let spec = ProtocolTrialSpec {
            params: params_for(kind),
            emerging_period: SimDuration::from_ticks(6_000),
            attack: AttackMode::ReleaseAhead,
        };
        let cfg = world(150, 0.3);
        let on_contract = run_protocol_trials(&spec, 12, 9, contract_factory(cfg)).unwrap();
        let on_analytic =
            run_protocol_trials(&spec, 12, 9, |s| AnalyticSubstrate::build(cfg, s)).unwrap();
        let on_overlay = run_protocol_trials(&spec, 12, 9, |s| Overlay::build(cfg, s)).unwrap();
        assert_eq!(
            on_contract.fingerprint, on_analytic.fingerprint,
            "{kind}: contract/analytic parity"
        );
        assert_eq!(
            on_contract.fingerprint, on_overlay.fingerprint,
            "{kind}: contract/overlay parity"
        );
    }
}

#[test]
fn sharded_matches_serial_for_all_schemes_on_the_contract_substrate() {
    for kind in SchemeKind::ALL {
        let spec = ProtocolTrialSpec {
            params: params_for(kind),
            emerging_period: SimDuration::from_ticks(6_000),
            attack: AttackMode::Drop,
        };
        let cfg = world(150, 0.25);
        let serial = run_protocol_trials(&spec, 12, 17, contract_factory(cfg)).unwrap();
        for shards in SHARD_COUNTS {
            let sharded =
                run_protocol_trials_sharded(&spec, 12, 17, shards, contract_factory(cfg)).unwrap();
            assert_eq!(
                sharded.fingerprint, serial.fingerprint,
                "{kind}/{shards} shards: fingerprint"
            );
            assert_eq!(sharded.released, serial.released, "{kind}: released");
            assert_eq!(sharded.clean, serial.clean, "{kind}: clean");
            assert_eq!(
                sharded.reconstructed_early, serial.reconstructed_early,
                "{kind}: early"
            );
            assert_eq!(sharded.messages.count(), serial.messages.count());

            let threaded =
                run_protocol_trials_threaded(&spec, 12, 17, shards, contract_factory(cfg)).unwrap();
            assert_eq!(
                threaded.fingerprint, serial.fingerprint,
                "{kind}/{shards} threads: fingerprint"
            );
        }
    }
}

fn bonded_spec(strategy: HolderStrategy) -> BondedSpec {
    BondedSpec {
        strategy,
        ..BondedSpec::new(8, 5, SimDuration::from_ticks(2_000))
    }
}

fn assert_bonded_identical(label: &str, a: &BondedMcResults, b: &BondedMcResults) {
    assert_eq!(a.fingerprint, b.fingerprint, "{label}: fingerprint");
    assert_eq!(a.released, b.released, "{label}: released");
    assert_eq!(a.clean, b.clean, "{label}: clean");
    assert_eq!(a.leaked_early, b.leaked_early, "{label}: leaked_early");
    assert_eq!(
        a.withheld_quorum, b.withheld_quorum,
        "{label}: withheld_quorum"
    );
    assert_eq!(a.slashed.count(), b.slashed.count(), "{label}: count");
    assert_eq!(a.slashed.min(), b.slashed.min(), "{label}: min");
    assert_eq!(a.slashed.max(), b.slashed.max(), "{label}: max");
    assert!(
        (a.slashed.mean() - b.slashed.mean()).abs() < 1e-9,
        "{label}: mean"
    );
}

#[test]
fn bonded_release_sharded_matches_serial() {
    for strategy in [
        HolderStrategy::Compliant,
        HolderStrategy::AlwaysWithhold,
        HolderStrategy::AlwaysRevealEarly,
        HolderStrategy::Rational {
            withhold_bribe: 200,
            early_reveal_bribe: 150,
        },
    ] {
        let spec = bonded_spec(strategy);
        let cfg = world(150, 0.3);
        let serial = run_bonded_trials(&spec, 13, 11, contract_factory(cfg)).unwrap();
        for shards in SHARD_COUNTS {
            let sharded =
                run_bonded_trials_sharded(&spec, 13, 11, shards, contract_factory(cfg)).unwrap();
            assert_bonded_identical(&format!("{strategy:?}/{shards} shards"), &serial, &sharded);
            let threaded =
                run_bonded_trials_threaded(&spec, 13, 11, shards, contract_factory(cfg)).unwrap();
            assert_bonded_identical(
                &format!("{strategy:?}/{shards} threads"),
                &serial,
                &threaded,
            );
        }
    }
}

#[test]
fn double_claim_is_rejected_at_the_contract() {
    use self_emerging_data::contract::contract::{commitment, DepositTerms, ReleaseContract};
    use self_emerging_data::contract::Ledger;

    let mut ledger = Ledger::new(2, 1_000);
    let mut contract = ReleaseContract::new();
    let id = contract
        .open(
            &mut ledger,
            DepositTerms {
                depositor: 1,
                bond: 100,
                reveal_reward: 10,
                reveal_from: 4,
                reveal_by: 6,
            },
            &[0],
            0,
        )
        .unwrap();
    contract.commit(id, 0, commitment(b"share"), 1).unwrap();
    contract.reveal(id, 0, b"share", 4).unwrap();
    contract.finalize(&mut ledger, id, 6).unwrap();
    assert_eq!(contract.claim(&mut ledger, id, 0).unwrap(), 110);
    assert!(matches!(
        contract.claim(&mut ledger, id, 0),
        Err(ContractError::AlreadyClaimed { holder: 0 })
    ));
    assert_eq!(ledger.balance(0), 1_010, "payout landed exactly once");
    assert_eq!(ledger.total_supply(), 2_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Escrow conservation + slash-only-on-misbehaviour, across seeds,
    /// malicious rates, strategies and churn:
    ///
    /// * the total token supply is unchanged by a full bonded release;
    /// * every escrowed token is settled (escrow drains to zero);
    /// * a holder is slashed **iff** it failed to reveal in-window
    ///   (withheld, died, or revealed early), and the slashed amount is
    ///   exactly `bond` per misbehaving holder;
    /// * an in-window revealer is never slashed and nets exactly the
    ///   reveal reward.
    #[test]
    fn bonded_release_economics_invariants(
        seed in 0u64..5_000,
        p in 0.0f64..1.0,
        strategy_idx in 0usize..4,
        churn: bool,
    ) {
        let strategy = [
            HolderStrategy::Compliant,
            HolderStrategy::AlwaysWithhold,
            HolderStrategy::AlwaysRevealEarly,
            HolderStrategy::Rational { withhold_bribe: 200, early_reveal_bribe: 111 },
        ][strategy_idx];
        let cfg = OverlayConfig {
            n_nodes: 120,
            malicious_fraction: p,
            mean_lifetime: if churn { Some(5_000) } else { None },
            horizon: 100_000,
            ..OverlayConfig::default()
        };
        let mut substrate = ContractSubstrate::build(ContractConfig::over(cfg), seed);
        let economy = *substrate.economy();
        let supply_before = substrate.ledger().total_supply();
        let spec = bonded_spec(strategy);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
        let report = run_bonded_release(&mut substrate, &spec, b"property secret", &mut rng)
            .unwrap();

        // Conservation: nothing minted, nothing destroyed, nothing stuck.
        prop_assert_eq!(substrate.ledger().total_supply(), supply_before);
        prop_assert_eq!(substrate.ledger().escrow(), 0, "everything settled");
        prop_assert_eq!(substrate.ledger().treasury(), report.slashed);

        // Slash accounting: exactly bond per misbehaving holder.
        let misbehaving = (report.early + report.withheld) as u64;
        prop_assert_eq!(report.slashed, misbehaving * economy.bond);
        prop_assert_eq!(report.on_time + report.early + report.withheld, spec.n);
        prop_assert!(report.died <= report.withheld);

        // Per-holder: slashed ⇔ misbehaved; claimed ⇔ revealed in-window.
        let contract = substrate.contract();
        let mut slashed_count = 0usize;
        for (holder, &slot) in report.slots.iter().enumerate() {
            match contract.holder_phase(0, holder).unwrap() {
                HolderPhase::Claimed => {
                    prop_assert_eq!(
                        substrate.ledger().balance(slot),
                        economy.holder_funds + economy.reveal_reward,
                        "in-window revealer nets the reward"
                    );
                }
                HolderPhase::Slashed => {
                    slashed_count += 1;
                    prop_assert_eq!(
                        substrate.ledger().balance(slot),
                        economy.holder_funds - economy.bond,
                        "misbehaving holder forfeits its bond"
                    );
                }
                other => prop_assert!(
                    false,
                    "after settlement every holder is Claimed or Slashed, got {:?}",
                    other
                ),
            }
        }
        prop_assert_eq!(slashed_count, report.early + report.withheld);

        // The failure predicates partition correctly.
        prop_assert_eq!(report.released.is_none(), report.failure.is_some());
        if report.early_leak.is_some() {
            prop_assert!(report.early >= spec.m, "a leak needs an early quorum");
        }
    }

    /// The wire-protocol sharded == serial property extends to the
    /// contract substrate for arbitrary seeds and trial counts.
    #[test]
    fn contract_substrate_sharded_equals_serial_property(
        seed in 0u64..10_000,
        trials in 1usize..16,
        p in 0.0f64..0.5,
    ) {
        let cfg = world(120, p);
        for kind in SchemeKind::ALL {
            let spec = ProtocolTrialSpec {
                params: params_for(kind),
                emerging_period: SimDuration::from_ticks(6_000),
                attack: AttackMode::ReleaseAhead,
            };
            let serial = run_protocol_trials(&spec, trials, seed, contract_factory(cfg)).unwrap();
            for shards in SHARD_COUNTS {
                let sharded =
                    run_protocol_trials_sharded(&spec, trials, seed, shards, contract_factory(cfg))
                        .unwrap();
                prop_assert_eq!(serial.fingerprint, sharded.fingerprint,
                    "{} with {} shards, {} trials", kind, shards, trials);
                prop_assert_eq!(serial.released, sharded.released);
                prop_assert_eq!(serial.clean, sharded.clean);
            }
        }
    }

    /// Quantified economics: once the bribe covers the deviation cost the
    /// drop probability jumps, and pricing the bond above the bribe
    /// restores the release — the contract's security knob, measured.
    #[test]
    fn bond_sizing_gates_the_drop_attack(seed in 0u64..1_000) {
        // Every holder adversary-controlled, no churn: the outcome is
        // purely the rational holders' bribe arithmetic.
        let cfg = OverlayConfig {
            n_nodes: 120,
            malicious_fraction: 1.0,
            ..OverlayConfig::default()
        };
        let economy = EconomyParams::default();
        let bribe = economy.deviation_cost() + 1;
        let bribed = BondedSpec {
            strategy: HolderStrategy::Rational {
                withhold_bribe: bribe,
                early_reveal_bribe: 0,
            },
            ..bonded_spec(HolderStrategy::Compliant)
        };
        let r = run_bonded_trials(&bribed, 4, seed, contract_factory(cfg)).unwrap();
        prop_assert_eq!(r.released.value(), 0.0, "profitable bribes drop everything");

        // Same bribe, bigger bond: deviation no longer pays.
        let big_bond = EconomyParams { bond: bribe, ..economy };
        let priced_out = move |s| {
            ContractSubstrate::build(
                ContractConfig { economy: big_bond, ..ContractConfig::over(cfg) },
                s,
            )
        };
        let r = run_bonded_trials(&bribed, 4, seed, priced_out).unwrap();
        prop_assert_eq!(r.released.value(), 1.0, "bond above bribe restores release");
    }
}
