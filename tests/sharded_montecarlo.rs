//! The sharded Monte-Carlo engine's core guarantee: partitioning a trial
//! batch into contiguous ranges — sequentially via
//! `run_protocol_trials_sharded` or over OS threads via the
//! `emerge-bench` driver — produces a `ProtocolMcResults` identical to
//! the serial run, fingerprint included, for every scheme, substrate and
//! shard count. Sharding and threading change wall-clock time only.
//!
//! This is what licenses recording multi-threaded numbers in
//! `BENCH_montecarlo.json` against single-threaded baselines, and it is
//! the invariant CI's `EMERGE_MC_THREADS` matrix guards.

use emerge_bench::mc::{run_protocol_trials_parallel, run_protocol_trials_threaded};
use emerge_bench::parallel::mc_threads;
use proptest::prelude::*;
use self_emerging_data::core::config::{SchemeKind, SchemeParams};
use self_emerging_data::core::faults::{run_faulted_trials, run_faulted_trials_sharded};
use self_emerging_data::core::montecarlo::{
    run_protocol_trials, run_protocol_trials_sharded, ProtocolMcResults, ProtocolTrialSpec,
};
use self_emerging_data::core::protocol::AttackMode;
use self_emerging_data::core::substrate::{AnalyticSubstrate, Overlay, OverlayConfig};
use self_emerging_data::faults::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
use self_emerging_data::sim::time::{SimDuration, SimTime};

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn params_for(kind: SchemeKind) -> SchemeParams {
    match kind {
        SchemeKind::Central => SchemeParams::Central,
        SchemeKind::Disjoint => SchemeParams::Disjoint { k: 2, l: 3 },
        SchemeKind::Joint => SchemeParams::Joint { k: 2, l: 3 },
        SchemeKind::Share => SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![3, 3],
        },
    }
}

fn spec_for(kind: SchemeKind, attack: AttackMode) -> ProtocolTrialSpec {
    ProtocolTrialSpec {
        params: params_for(kind),
        emerging_period: SimDuration::from_ticks(6_000),
        attack,
    }
}

fn world(n: usize, p: f64) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: p,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    }
}

/// Exact equality on the fingerprint and every counter-valued field; the
/// floating-point moments of the message summary merge via parallel
/// Welford and agree up to rounding.
fn assert_identical(label: &str, serial: &ProtocolMcResults, sharded: &ProtocolMcResults) {
    assert_eq!(
        serial.fingerprint, sharded.fingerprint,
        "{label}: fingerprint"
    );
    assert_eq!(serial.released, sharded.released, "{label}: released");
    assert_eq!(serial.clean, sharded.clean, "{label}: clean");
    assert_eq!(
        serial.reconstructed_early, sharded.reconstructed_early,
        "{label}: reconstructed_early"
    );
    assert_eq!(
        serial.messages.count(),
        sharded.messages.count(),
        "{label}: message count"
    );
    assert_eq!(
        serial.messages.min(),
        sharded.messages.min(),
        "{label}: min"
    );
    assert_eq!(
        serial.messages.max(),
        sharded.messages.max(),
        "{label}: max"
    );
    assert!(
        (serial.messages.mean() - sharded.messages.mean()).abs() < 1e-9,
        "{label}: message mean"
    );
}

#[test]
fn sharded_matches_serial_for_all_schemes_on_both_substrates() {
    for kind in SchemeKind::ALL {
        let spec = spec_for(kind, AttackMode::ReleaseAhead);
        let cfg = world(150, 0.3);

        let serial_fast =
            run_protocol_trials(&spec, 12, 9, |s| AnalyticSubstrate::build(cfg, s)).unwrap();
        let serial_full = run_protocol_trials(&spec, 12, 9, |s| Overlay::build(cfg, s)).unwrap();
        assert_eq!(
            serial_fast.fingerprint, serial_full.fingerprint,
            "{kind}: substrate parity of the serial baseline"
        );

        for shards in SHARD_COUNTS {
            let fast = run_protocol_trials_sharded(&spec, 12, 9, shards, |s| {
                AnalyticSubstrate::build(cfg, s)
            })
            .unwrap();
            assert_identical(
                &format!("{kind}/analytic/{shards} shards"),
                &serial_fast,
                &fast,
            );

            let full =
                run_protocol_trials_sharded(&spec, 12, 9, shards, |s| Overlay::build(cfg, s))
                    .unwrap();
            assert_identical(
                &format!("{kind}/overlay/{shards} shards"),
                &serial_full,
                &full,
            );
        }
    }
}

#[test]
fn threaded_driver_matches_serial_for_all_schemes() {
    for kind in SchemeKind::ALL {
        let spec = spec_for(kind, AttackMode::Drop);
        let cfg = world(150, 0.25);
        let serial =
            run_protocol_trials(&spec, 10, 17, |s| AnalyticSubstrate::build(cfg, s)).unwrap();
        for threads in SHARD_COUNTS {
            let threaded = run_protocol_trials_threaded(&spec, 10, 17, threads, |s| {
                AnalyticSubstrate::build(cfg, s)
            })
            .unwrap();
            assert_identical(&format!("{kind}/{threads} threads"), &serial, &threaded);
        }
        // The env-driven entry point (EMERGE_MC_THREADS or available
        // parallelism) must agree too, whatever the environment says.
        let auto =
            run_protocol_trials_parallel(&spec, 10, 17, |s| AnalyticSubstrate::build(cfg, s))
                .unwrap();
        assert_identical(&format!("{kind}/auto ({})", mc_threads()), &serial, &auto);
    }
}

/// A non-trivial schedule mixing four fault kinds over the protocol's
/// active window (emerging period 6k ticks, so faults run [500, 5500)).
fn storm_plan(seed: u64) -> FaultPlan {
    let window = |kind| FaultEvent {
        from: SimTime::from_ticks(500),
        to: SimTime::from_ticks(5_500),
        kind,
    };
    FaultPlan::new(
        seed,
        vec![
            window(FaultKind::LossBurst { loss_ppm: 200_000 }),
            window(FaultKind::CrashRestart { crash_ppm: 150_000 }),
            window(FaultKind::ChurnStorm { churn_ppm: 100_000 }),
            window(FaultKind::SlowNodes {
                slow_ppm: 250_000,
                extra_ticks: 50,
            }),
        ],
    )
}

#[test]
fn faulted_sharded_matches_serial_on_both_substrates() {
    let plan = storm_plan(41);
    let policy = RecoveryPolicy::default();
    for kind in [SchemeKind::Joint, SchemeKind::Share] {
        let spec = spec_for(kind, AttackMode::ReleaseAhead);
        let cfg = world(150, 0.3);
        let serial = run_faulted_trials(&spec, &plan, policy, 12, 9, |s| {
            AnalyticSubstrate::build(cfg, s)
        })
        .unwrap();
        let full =
            run_faulted_trials(&spec, &plan, policy, 12, 9, |s| Overlay::build(cfg, s)).unwrap();
        assert_eq!(
            serial.base.fingerprint, full.base.fingerprint,
            "{kind}: substrate parity must survive fault injection"
        );
        assert_eq!(
            serial.fault_fingerprint, full.fault_fingerprint,
            "{kind}: the fault schedule is substrate-independent"
        );
        for shards in SHARD_COUNTS {
            let sharded = run_faulted_trials_sharded(&spec, &plan, policy, 12, 9, shards, |s| {
                AnalyticSubstrate::build(cfg, s)
            })
            .unwrap();
            assert_identical(
                &format!("{kind}/faulted/{shards} shards"),
                &serial.base,
                &sharded.base,
            );
            assert_eq!(
                serial.fault_fingerprint, sharded.fault_fingerprint,
                "{kind}/faulted/{shards} shards: fault fingerprint"
            );
            assert_eq!(serial.degraded, sharded.degraded);
            assert_eq!(serial.clean_of_faults, sharded.clean_of_faults);
            assert_eq!(serial.disrupted, sharded.disrupted);
            assert_eq!(serial.disruptions.count(), sharded.disruptions.count());
            assert_eq!(serial.retries.count(), sharded.retries.count());
        }
        assert!(
            serial.disrupted.successes() > 0,
            "{kind}: the storm must actually disrupt"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form over seeds, trial counts, attacks and malicious
    /// rates: sharded == serial for every scheme and shard count, on the
    /// fast substrate.
    #[test]
    fn sharded_equals_serial_property(
        seed in 0u64..10_000,
        trials in 1usize..20,
        attack_idx in 0usize..3,
        p in 0.0f64..0.5,
    ) {
        let attack = [AttackMode::Passive, AttackMode::ReleaseAhead, AttackMode::Drop][attack_idx];
        let cfg = world(120, p);
        for kind in SchemeKind::ALL {
            let spec = spec_for(kind, attack);
            let serial = run_protocol_trials(&spec, trials, seed, |s| {
                AnalyticSubstrate::build(cfg, s)
            })
            .unwrap();
            for shards in SHARD_COUNTS {
                let sharded = run_protocol_trials_sharded(&spec, trials, seed, shards, |s| {
                    AnalyticSubstrate::build(cfg, s)
                })
                .unwrap();
                prop_assert_eq!(serial.fingerprint, sharded.fingerprint,
                    "{} with {} shards, {} trials", kind, shards, trials);
                prop_assert_eq!(serial.released, sharded.released);
                prop_assert_eq!(serial.clean, sharded.clean);
                prop_assert_eq!(serial.reconstructed_early, sharded.reconstructed_early);
            }
        }
    }

    /// Property form under injected faults: for any plan seed and trial
    /// count, sharded faulted runs merge to the serial faulted run on
    /// both fingerprints and the degraded/clean partition.
    #[test]
    fn faulted_sharded_equals_serial_property(
        plan_seed in 0u64..10_000,
        mc_seed in 0u64..10_000,
        trials in 1usize..16,
    ) {
        let spec = spec_for(SchemeKind::Share, AttackMode::ReleaseAhead);
        let cfg = world(120, 0.2);
        let plan = storm_plan(plan_seed);
        let policy = RecoveryPolicy::default();
        let serial = run_faulted_trials(&spec, &plan, policy, trials, mc_seed, |s| {
            AnalyticSubstrate::build(cfg, s)
        })
        .unwrap();
        for shards in SHARD_COUNTS {
            let sharded = run_faulted_trials_sharded(
                &spec, &plan, policy, trials, mc_seed, shards,
                |s| AnalyticSubstrate::build(cfg, s),
            )
            .unwrap();
            prop_assert_eq!(serial.base.fingerprint, sharded.base.fingerprint,
                "plan seed {} with {} shards, {} trials", plan_seed, shards, trials);
            prop_assert_eq!(serial.fault_fingerprint, sharded.fault_fingerprint);
            prop_assert_eq!(serial.degraded, sharded.degraded);
            prop_assert_eq!(serial.clean_of_faults, sharded.clean_of_faults);
            prop_assert_eq!(serial.disrupted, sharded.disrupted);
        }
    }
}
