//! The sharded Monte-Carlo guarantee, extended to telemetry: the
//! profiled drivers install one `emerge-obs` collector per worker shard
//! and merge the snapshots in shard order, and every counter-valued
//! metric (span call counts, DHT resolves, AEAD seal volume, contract
//! transition events) must come out identical to the single-threaded
//! run for any thread count — the same invariant
//! `tests/sharded_montecarlo.rs` pins for trial outcomes, checked here
//! with `emerge_sim::shard::metrics_digest` over the counter section.
//!
//! (Timing histograms are exempt: they hold wall-clock nanoseconds,
//! which no two runs reproduce. Their *counts* still merge exactly and
//! are compared.)

use emerge_bench::mc::{
    run_bonded_trials_profiled, run_protocol_trials_pooled_profiled, run_protocol_trials_profiled,
};
use proptest::prelude::*;
use self_emerging_data::core::config::{SchemeKind, SchemeParams};
use self_emerging_data::core::montecarlo::{run_protocol_trials, ProtocolTrialSpec};
use self_emerging_data::core::protocol::AttackMode;
use self_emerging_data::core::substrate::{AnalyticSubstrate, OverlayConfig};
use self_emerging_data::obs::MetricsSnapshot;
use self_emerging_data::sim::shard::metrics_digest;
use self_emerging_data::sim::time::SimDuration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn share_spec() -> ProtocolTrialSpec {
    ProtocolTrialSpec {
        params: SchemeParams::Share {
            k: 2,
            l: 3,
            n: 6,
            m: vec![3, 3],
        },
        emerging_period: SimDuration::from_ticks(6_000),
        attack: AttackMode::ReleaseAhead,
    }
}

fn world(p: f64) -> OverlayConfig {
    OverlayConfig {
        n_nodes: 150,
        malicious_fraction: p,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    }
}

/// Counters and histogram counts must match exactly; histogram sums
/// (wall-clock time) are exempt.
fn assert_telemetry_identical(label: &str, serial: &MetricsSnapshot, sharded: &MetricsSnapshot) {
    assert_eq!(serial.counters, sharded.counters, "{label}: counters");
    assert_eq!(
        metrics_digest(serial),
        metrics_digest(sharded),
        "{label}: metrics digest"
    );
    assert_eq!(
        serial.histograms.len(),
        sharded.histograms.len(),
        "{label}: histogram set"
    );
    for (s, t) in serial.histograms.iter().zip(&sharded.histograms) {
        assert_eq!(s.name, t.name, "{label}: histogram name");
        assert_eq!(s.count, t.count, "{label}: {} count", s.name);
    }
}

#[test]
fn pooled_profiled_telemetry_is_thread_count_invariant() {
    let spec = share_spec();
    let cfg = world(0.3);
    let trials = 12;
    let outcome_reference =
        run_protocol_trials(&spec, trials, 9, |s| AnalyticSubstrate::build(cfg, s)).unwrap();

    let (serial_results, serial_telemetry) = run_protocol_trials_pooled_profiled(
        &spec,
        trials,
        9,
        1,
        || AnalyticSubstrate::build(cfg, 0),
        |s, seed| s.rebuild(seed),
    )
    .unwrap();
    assert_eq!(serial_results.fingerprint, outcome_reference.fingerprint);

    // The expected per-trial counters actually landed.
    let trials_u64 = trials as u64;
    for phase in [
        "trial.world_rebuild",
        "trial.paths",
        "trial.package_build",
        "trial.execute",
    ] {
        assert_eq!(
            serial_telemetry.counter(&format!("{phase}.calls")),
            Some(trials_u64),
            "{phase}: one span per trial"
        );
    }
    assert!(serial_telemetry.counter("package.seal.bytes").unwrap_or(0) > 0);
    assert!(
        serial_telemetry
            .counter("dht.analytic.resolves")
            .unwrap_or(0)
            > 0
    );

    for threads in THREAD_COUNTS {
        let (results, telemetry) = run_protocol_trials_pooled_profiled(
            &spec,
            trials,
            9,
            threads,
            || AnalyticSubstrate::build(cfg, 0),
            |s, seed| s.rebuild(seed),
        )
        .unwrap();
        assert_eq!(
            results.fingerprint, serial_results.fingerprint,
            "{threads} threads: fingerprint"
        );
        assert_telemetry_identical(
            &format!("pooled/{threads} threads"),
            &serial_telemetry,
            &telemetry,
        );
    }
}

#[test]
fn allocating_profiled_telemetry_matches_across_schemes_and_threads() {
    for kind in SchemeKind::ALL {
        let params = match kind {
            SchemeKind::Central => SchemeParams::Central,
            SchemeKind::Disjoint => SchemeParams::Disjoint { k: 2, l: 3 },
            SchemeKind::Joint => SchemeParams::Joint { k: 2, l: 3 },
            SchemeKind::Share => SchemeParams::Share {
                k: 2,
                l: 3,
                n: 5,
                m: vec![3, 3],
            },
        };
        let spec = ProtocolTrialSpec {
            params,
            emerging_period: SimDuration::from_ticks(6_000),
            attack: AttackMode::Drop,
        };
        let cfg = world(0.25);
        let (serial_results, serial_telemetry) =
            run_protocol_trials_profiled(&spec, 10, 17, 1, |s| AnalyticSubstrate::build(cfg, s))
                .unwrap();
        assert_eq!(
            serial_telemetry.counter("trial.execute.calls"),
            Some(10),
            "{kind}: execute span per trial"
        );
        for threads in THREAD_COUNTS {
            let (results, telemetry) = run_protocol_trials_profiled(&spec, 10, 17, threads, |s| {
                AnalyticSubstrate::build(cfg, s)
            })
            .unwrap();
            assert_eq!(results.fingerprint, serial_results.fingerprint);
            assert_telemetry_identical(
                &format!("{kind}/{threads} threads"),
                &serial_telemetry,
                &telemetry,
            );
        }
    }
}

#[test]
fn bonded_profiled_telemetry_is_thread_count_invariant() {
    use self_emerging_data::contract::release::BondedSpec;
    use self_emerging_data::contract::substrate::{ContractConfig, ContractSubstrate};

    let spec = BondedSpec::new(6, 4, SimDuration::from_ticks(1_000));
    let factory = |s| {
        ContractSubstrate::build(
            ContractConfig::over(OverlayConfig {
                n_nodes: 100,
                malicious_fraction: 0.4,
                ..OverlayConfig::default()
            }),
            s,
        )
    };
    let (serial_results, serial_telemetry) =
        run_bonded_trials_profiled(&spec, 11, 3, 1, factory).unwrap();
    assert_eq!(
        serial_telemetry.counter("trial.bonded_release.calls"),
        Some(11)
    );
    // Every trial opens one deposit and commits every holder.
    assert_eq!(serial_telemetry.counter("contract.open"), Some(11));
    assert_eq!(serial_telemetry.counter("contract.commit"), Some(11 * 6));
    for threads in THREAD_COUNTS {
        let (results, telemetry) =
            run_bonded_trials_profiled(&spec, 11, 3, threads, factory).unwrap();
        assert_eq!(results.fingerprint, serial_results.fingerprint);
        assert_telemetry_identical(
            &format!("bonded/{threads} threads"),
            &serial_telemetry,
            &telemetry,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form over seeds and trial counts: the pooled profiled
    /// driver's counter telemetry is thread-count invariant.
    #[test]
    fn pooled_telemetry_digest_property(
        seed in 0u64..10_000,
        trials in 1usize..16,
    ) {
        let spec = share_spec();
        let cfg = world(0.3);
        let (serial_results, serial_telemetry) = run_protocol_trials_pooled_profiled(
            &spec, trials, seed, 1,
            || AnalyticSubstrate::build(cfg, 0),
            |s, w| s.rebuild(w),
        ).unwrap();
        for threads in THREAD_COUNTS {
            let (results, telemetry) = run_protocol_trials_pooled_profiled(
                &spec, trials, seed, threads,
                || AnalyticSubstrate::build(cfg, 0),
                |s, w| s.rebuild(w),
            ).unwrap();
            prop_assert_eq!(results.fingerprint, serial_results.fingerprint);
            prop_assert_eq!(&telemetry.counters, &serial_telemetry.counters);
            prop_assert_eq!(metrics_digest(&telemetry), metrics_digest(&serial_telemetry));
        }
    }
}
