//! End-to-end integration tests: the full send → DHT routing → emerge →
//! receive pipeline across crates, schemes, attack modes and churn.

use self_emerging_data::core::config::SchemeKind;
use self_emerging_data::core::emergence::{SelfEmergingSystem, SendRequest};
use self_emerging_data::core::error::EmergeError;
use self_emerging_data::core::protocol::AttackMode;
use self_emerging_data::dht::overlay::OverlayConfig;
use self_emerging_data::sim::time::SimDuration;

fn request(scheme: SchemeKind, message: &[u8], period: u64, p: f64) -> SendRequest {
    SendRequest {
        message: message.to_vec(),
        emerging_period: SimDuration::from_ticks(period),
        scheme,
        target_resilience: 0.99,
        expected_malicious_rate: p,
    }
}

#[test]
fn every_scheme_delivers_in_a_clean_network() {
    for (i, scheme) in SchemeKind::ALL.into_iter().enumerate() {
        let mut system = SelfEmergingSystem::new(
            OverlayConfig {
                n_nodes: 300,
                ..OverlayConfig::default()
            },
            7000 + i as u64,
        );
        let mut handle = system
            .send(request(scheme, b"integration payload", 9_000, 0.0))
            .expect("send");
        system.run_to_release(&mut handle);
        assert_eq!(
            system.receive(&handle).expect("receive"),
            b"integration payload",
            "scheme {scheme}"
        );
        // The key emerged exactly at tr.
        let report = handle.report.as_ref().unwrap();
        assert_eq!(report.released.as_ref().unwrap().0, handle.release_time);
        assert!(report.adversary_reconstruction.is_none());
    }
}

#[test]
fn messages_stay_sealed_until_release_time() {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 200,
            ..OverlayConfig::default()
        },
        42,
    );
    let handle = system
        .send(request(SchemeKind::Share, b"sealed", 5_000, 0.0))
        .unwrap();
    for _ in 0..3 {
        assert!(matches!(
            system.receive(&handle),
            Err(EmergeError::NotYetReleased { .. })
        ));
    }
}

#[test]
fn share_scheme_survives_combined_attack_and_churn() {
    // 10% droppers plus node lifetimes comparable to the emerging period.
    let tlife = 30_000u64;
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 400,
            malicious_fraction: 0.10,
            mean_lifetime: Some(tlife),
            horizon: 5 * tlife,
            ..OverlayConfig::default()
        },
        99,
    );
    system.set_attack_mode(AttackMode::Drop);
    let mut handle = system
        .send(request(SchemeKind::Share, b"resilient", tlife, 0.10))
        .unwrap();
    system.run_to_release(&mut handle);
    assert_eq!(
        system.receive(&handle).expect("share must survive"),
        b"resilient"
    );
}

#[test]
fn centralized_scheme_fails_against_full_compromise() {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 100,
            malicious_fraction: 1.0,
            ..OverlayConfig::default()
        },
        3,
    );
    system.set_attack_mode(AttackMode::Drop);
    let mut handle = system
        .send(request(SchemeKind::Central, b"doomed", 4_000, 0.0))
        .unwrap();
    system.run_to_release(&mut handle);
    assert!(matches!(
        system.receive(&handle),
        Err(EmergeError::KeyLost { .. })
    ));
}

#[test]
fn release_ahead_on_full_compromise_recovers_real_plaintext() {
    for scheme in [SchemeKind::Joint, SchemeKind::Share] {
        let mut system = SelfEmergingSystem::new(
            OverlayConfig {
                n_nodes: 150,
                malicious_fraction: 1.0,
                ..OverlayConfig::default()
            },
            4,
        );
        system.set_attack_mode(AttackMode::ReleaseAhead);
        let mut handle = system
            .send(request(scheme, b"stolen goods", 6_000, 0.0))
            .unwrap();
        system.run_to_release(&mut handle);
        let report = handle.report.as_ref().unwrap();
        let (at, _key) = report
            .adversary_reconstruction
            .as_ref()
            .unwrap_or_else(|| panic!("{scheme}: full compromise must reconstruct"));
        assert!(
            *at < handle.release_time,
            "{scheme}: reconstruction must be early"
        );
    }
}

#[test]
fn passive_adversaries_never_disrupt_delivery() {
    for p in [0.2, 0.5, 0.9] {
        let mut system = SelfEmergingSystem::new(
            OverlayConfig {
                n_nodes: 250,
                malicious_fraction: p,
                ..OverlayConfig::default()
            },
            (p * 100.0) as u64,
        );
        let mut handle = system
            .send(request(
                SchemeKind::Joint,
                b"carried faithfully",
                6_000,
                0.1,
            ))
            .unwrap();
        system.run_to_release(&mut handle);
        assert_eq!(
            system
                .receive(&handle)
                .expect("passive nodes follow protocol"),
            b"carried faithfully"
        );
    }
}

#[test]
fn multiple_sends_share_one_overlay() {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 300,
            ..OverlayConfig::default()
        },
        11,
    );
    let mut handles: Vec<_> = (0..5)
        .map(|i| {
            system
                .send(request(
                    SchemeKind::Disjoint,
                    format!("message-{i}").as_bytes(),
                    4_000 + i * 500,
                    0.05,
                ))
                .expect("send")
        })
        .collect();
    for (i, handle) in handles.iter_mut().enumerate() {
        system.run_to_release(handle);
        assert_eq!(
            system.receive(handle).unwrap(),
            format!("message-{i}").into_bytes()
        );
    }
}

#[test]
fn large_messages_roundtrip() {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 200,
            ..OverlayConfig::default()
        },
        12,
    );
    let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let mut handle = system
        .send(request(SchemeKind::Joint, &big, 3_000, 0.02))
        .unwrap();
    system.run_to_release(&mut handle);
    assert_eq!(system.receive(&handle).unwrap(), big);
}

#[test]
fn cloud_blob_is_ciphertext_not_plaintext() {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 150,
            ..OverlayConfig::default()
        },
        13,
    );
    let secret_text = b"do not store me in the clear";
    let handle = system
        .send(request(SchemeKind::Central, secret_text, 2_000, 0.0))
        .unwrap();
    // The cloud has exactly one blob and it does not contain the plaintext.
    assert_eq!(system.cloud().len(), 1);
    let _ = handle;
}
