//! Substrate parity: the fully simulated `Overlay` and the routing-free
//! `AnalyticSubstrate` must be indistinguishable to the key-routing
//! schemes. For equal `(OverlayConfig, seed)` pairs the two substrates
//! carry identical populations and resolve holder addresses identically,
//! so every path plan, protocol report and end-to-end emergence outcome
//! must match bit for bit across all four schemes — this is what licenses
//! using the fast substrate for the paper-scale Monte-Carlo sweeps.

use self_emerging_data::core::config::{SchemeKind, SchemeParams};
use self_emerging_data::core::emergence::{SelfEmergingSystem, SendRequest};
use self_emerging_data::core::montecarlo::{
    run_protocol_trials, run_protocol_trials_sharded, ProtocolTrialSpec,
};
use self_emerging_data::core::package::{build_keyed_packages, build_share_packages, KeySchedule};
use self_emerging_data::core::path::construct_paths;
use self_emerging_data::core::protocol::{
    execute_central, execute_keyed, execute_share, AttackMode, RunConfig, RunReport,
};
use self_emerging_data::core::substrate::{
    AnalyticSubstrate, HolderSubstrate, Overlay, OverlayConfig,
};
use self_emerging_data::crypto::keys::SymmetricKey;
use self_emerging_data::sim::time::{SimDuration, SimTime};

const ATTACKS: [AttackMode; 3] = [
    AttackMode::Passive,
    AttackMode::ReleaseAhead,
    AttackMode::Drop,
];

fn churny_config(n: usize, p: f64) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: p,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    }
}

fn params_for(kind: SchemeKind) -> SchemeParams {
    match kind {
        SchemeKind::Central => SchemeParams::Central,
        SchemeKind::Disjoint => SchemeParams::Disjoint { k: 3, l: 4 },
        SchemeKind::Joint => SchemeParams::Joint { k: 3, l: 4 },
        SchemeKind::Share => SchemeParams::Share {
            k: 2,
            l: 4,
            n: 6,
            m: vec![3, 3, 4],
        },
    }
}

/// Runs one full protocol execution on a substrate, returning the report.
fn run_protocol<S: HolderSubstrate>(
    substrate: &mut S,
    params: &SchemeParams,
    sender_seed: &SymmetricKey,
    attack: AttackMode,
) -> (Vec<usize>, RunReport) {
    let plan = construct_paths(substrate, params, sender_seed).expect("plan");
    let config = RunConfig {
        ts: SimTime::ZERO,
        emerging_period: SimDuration::from_ticks(8_000),
        attack,
    };
    let schedule = KeySchedule::new(sender_seed.clone());
    let secret = sender_seed.derive(b"parity-secret").as_bytes().to_vec();
    let report = match params {
        SchemeParams::Central => execute_central(substrate, &plan, &secret, &config),
        SchemeParams::Disjoint { .. } | SchemeParams::Joint { .. } => {
            let pkgs = build_keyed_packages(&plan, params, &schedule, &secret).expect("pkgs");
            execute_keyed(substrate, &plan, params, &pkgs, &config)
        }
        SchemeParams::Share { .. } => {
            let pkgs = build_share_packages(&plan, params, &schedule, &secret).expect("pkgs");
            execute_share(substrate, &plan, params, &pkgs, &config)
        }
    }
    .expect("protocol run");
    (plan.slots, report)
}

#[test]
fn holder_sequences_are_identical_across_substrates() {
    for kind in SchemeKind::ALL {
        let params = params_for(kind);
        for seed in 0..6u64 {
            let config = churny_config(200, 0.25);
            let overlay = Overlay::build(config, seed);
            let analytic = AnalyticSubstrate::build(config, seed);
            let sender_seed = SymmetricKey::from_bytes([seed as u8 + 1; 32]);
            let full = construct_paths(&overlay, &params, &sender_seed).expect("overlay plan");
            let fast = construct_paths(&analytic, &params, &sender_seed).expect("analytic plan");
            assert_eq!(full, fast, "{kind} plan diverged at seed {seed}");
        }
    }
}

#[test]
fn protocol_reports_are_identical_across_substrates() {
    for kind in SchemeKind::ALL {
        let params = params_for(kind);
        for attack in ATTACKS {
            for seed in 0..4u64 {
                let config = churny_config(150, 0.3);
                let mut overlay = Overlay::build(config, seed);
                let mut analytic = AnalyticSubstrate::build(config, seed);
                let sender_seed = SymmetricKey::from_bytes([seed as u8 + 9; 32]);
                let full = run_protocol(&mut overlay, &params, &sender_seed, attack);
                let fast = run_protocol(&mut analytic, &params, &sender_seed, attack);
                assert_eq!(
                    full, fast,
                    "{kind} under {attack:?} diverged at seed {seed}"
                );
            }
        }
    }
}

#[test]
fn end_to_end_emergence_is_identical_across_substrates() {
    for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
        let config = churny_config(250, 0.1);
        let seed = 400 + i as u64;
        let request = || SendRequest {
            message: format!("parity payload for {kind}").into_bytes(),
            emerging_period: SimDuration::from_ticks(12_000),
            scheme: kind,
            target_resilience: 0.99,
            expected_malicious_rate: 0.1,
        };

        let mut full = SelfEmergingSystem::new(config, seed);
        let mut handle_full = full.send(request()).expect("overlay send");
        full.run_to_release(&mut handle_full);

        let mut fast = SelfEmergingSystem::new_analytic(config, seed);
        let mut handle_fast = fast.send(request()).expect("analytic send");
        fast.run_to_release(&mut handle_fast);

        assert_eq!(handle_full.params, handle_fast.params, "{kind} params");
        assert_eq!(handle_full.plan, handle_fast.plan, "{kind} plan");
        assert_eq!(handle_full.report, handle_fast.report, "{kind} report");
        assert_eq!(
            full.receive(&handle_full).ok(),
            fast.receive(&handle_fast).ok(),
            "{kind} received message"
        );
    }
}

#[test]
fn montecarlo_fingerprints_agree_for_all_schemes() {
    for kind in SchemeKind::ALL {
        let spec = ProtocolTrialSpec {
            params: params_for(kind),
            emerging_period: SimDuration::from_ticks(5_000),
            attack: AttackMode::ReleaseAhead,
        };
        let config = churny_config(120, 0.35);
        let full = run_protocol_trials(&spec, 10, 77, |s| Overlay::build(config, s))
            .expect("overlay trials");
        let fast = run_protocol_trials(&spec, 10, 77, |s| AnalyticSubstrate::build(config, s))
            .expect("analytic trials");
        assert_eq!(full.fingerprint, fast.fingerprint, "{kind} fingerprint");
        assert_eq!(
            full.clean.successes(),
            fast.clean.successes(),
            "{kind} clean"
        );
        assert_eq!(
            full.released.successes(),
            fast.released.successes(),
            "{kind} released"
        );
        assert_eq!(
            full.reconstructed_early.successes(),
            fast.reconstructed_early.successes(),
            "{kind} reconstructed"
        );
    }
}

#[test]
fn sharded_montecarlo_preserves_cross_substrate_parity() {
    // Sharding must compose with substrate parity: analytic shards merged
    // together agree bit for bit with a serial overlay run (and with
    // overlay shards), so mixing sharded fast runs and serial reference
    // runs across the evaluation pipeline stays sound.
    for kind in SchemeKind::ALL {
        let spec = ProtocolTrialSpec {
            params: params_for(kind),
            emerging_period: SimDuration::from_ticks(5_000),
            attack: AttackMode::ReleaseAhead,
        };
        let config = churny_config(120, 0.35);
        let full_serial = run_protocol_trials(&spec, 10, 77, |s| Overlay::build(config, s))
            .expect("overlay trials");
        for shards in [2usize, 7] {
            let fast_sharded = run_protocol_trials_sharded(&spec, 10, 77, shards, |s| {
                AnalyticSubstrate::build(config, s)
            })
            .expect("analytic sharded trials");
            assert_eq!(
                full_serial.fingerprint, fast_sharded.fingerprint,
                "{kind} diverged with {shards} analytic shards"
            );
            assert_eq!(
                full_serial.clean.successes(),
                fast_sharded.clean.successes(),
                "{kind} clean with {shards} shards"
            );
        }
    }
}

#[test]
fn resolution_parity_over_random_targets() {
    let config = churny_config(500, 0.2);
    let overlay = Overlay::build(config, 123);
    let analytic = AnalyticSubstrate::build(config, 123);
    for i in 0..200 {
        let target =
            self_emerging_data::dht::id::NodeId::from_name(format!("target-{i}").as_bytes());
        assert_eq!(
            HolderSubstrate::resolve_holder(&overlay, &target),
            HolderSubstrate::resolve_holder(&analytic, &target),
            "holder resolution diverged for target {i}"
        );
        assert_eq!(
            HolderSubstrate::closest_slots(&overlay, &target, 7),
            HolderSubstrate::closest_slots(&analytic, &target, 7),
            "closest slots diverged for target {i}"
        );
    }
}
