//! Reproducibility guarantees: everything in this repository is
//! deterministic given a seed — overlay construction, protocol execution,
//! Monte-Carlo estimates and whole figure tables.

use self_emerging_data::core::config::{SchemeKind, SchemeParams};
use self_emerging_data::core::emergence::{SelfEmergingSystem, SendRequest};
use self_emerging_data::core::montecarlo::{run_trials, TrialSpec};
use self_emerging_data::dht::overlay::{Overlay, OverlayConfig};
use self_emerging_data::sim::time::SimDuration;

#[test]
fn overlay_construction_is_bit_stable() {
    let config = OverlayConfig {
        n_nodes: 500,
        malicious_fraction: 0.2,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    };
    let a = Overlay::build(config, 123);
    let b = Overlay::build(config, 123);
    for slot in 0..500 {
        assert_eq!(a.generations(slot), b.generations(slot), "slot {slot}");
    }
}

#[test]
fn protocol_reports_are_identical_across_runs() {
    let run = || {
        let mut system = SelfEmergingSystem::new(
            OverlayConfig {
                n_nodes: 200,
                malicious_fraction: 0.3,
                ..OverlayConfig::default()
            },
            777,
        );
        system.set_attack_mode(self_emerging_data::core::protocol::AttackMode::ReleaseAhead);
        let mut handle = system
            .send(SendRequest {
                message: b"deterministic".to_vec(),
                emerging_period: SimDuration::from_ticks(5_000),
                scheme: SchemeKind::Joint,
                target_resilience: 0.99,
                expected_malicious_rate: 0.3,
            })
            .unwrap();
        system.run_to_release(&mut handle);
        let report = handle.report.unwrap();
        (
            report.messages_sent,
            report.released.clone(),
            report.adversary_reconstruction.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn montecarlo_estimates_are_exact_replicas() {
    let spec = TrialSpec {
        params: SchemeParams::Share {
            k: 3,
            l: 6,
            n: 50,
            m: vec![20; 5],
        },
        population: 2_000,
        p: 0.25,
        alpha: Some(2.0),
        unavailability: 0.1,
    };
    let a = run_trials(&spec, 400, 31337).unwrap();
    let b = run_trials(&spec, 400, 31337).unwrap();
    assert_eq!(
        a.release_resilience.successes(),
        b.release_resilience.successes()
    );
    assert_eq!(a.drop_resilience.successes(), b.drop_resilience.successes());
    assert_eq!(
        a.strict_release_resilience.successes(),
        b.strict_release_resilience.successes()
    );
}

#[test]
fn different_seeds_give_different_worlds() {
    let config = OverlayConfig {
        n_nodes: 100,
        ..OverlayConfig::default()
    };
    let a = Overlay::build(config, 1);
    let b = Overlay::build(config, 2);
    let same = (0..100)
        .filter(|&s| a.initial(s).id == b.initial(s).id)
        .count();
    assert_eq!(same, 0, "different seeds must give disjoint ID sets");
}

#[test]
fn figure_cells_are_reproducible() {
    // The exact numbers committed in EXPERIMENTS.md depend on this.
    let spec = TrialSpec::new(SchemeParams::Joint { k: 4, l: 8 }, 10_000, 0.3);
    let r1 = run_trials(&spec, 200, 0x6A ^ 0x03).unwrap();
    let r2 = run_trials(&spec, 200, 0x6A ^ 0x03).unwrap();
    assert_eq!(r1.r_min(), r2.r_min());
}
