//! Cross-fidelity agreement: the wire-level protocol (real onions, real
//! shares, real AEAD on the DHT overlay) must agree with the combinatorial
//! model on when attacks succeed.
//!
//! Strategy: build many small overlay worlds with different seeds and
//! malicious fractions, run the wire protocol under each attack, and
//! check outcome-by-outcome consistency with the predicate evaluated on
//! the same worlds' ground truth.

use self_emerging_data::core::config::SchemeParams;
use self_emerging_data::core::package::{build_keyed_packages, build_share_packages, KeySchedule};
use self_emerging_data::core::path::construct_paths;
use self_emerging_data::core::protocol::{execute_keyed, execute_share, AttackMode, RunConfig};
use self_emerging_data::crypto::keys::SymmetricKey;
use self_emerging_data::dht::overlay::{Overlay, OverlayConfig};
use self_emerging_data::sim::time::{SimDuration, SimTime};

const SECRET: &[u8] = b"cross-fidelity secret";

fn world(n: usize, p: f64, seed: u64) -> Overlay {
    Overlay::build(
        OverlayConfig {
            n_nodes: n,
            malicious_fraction: p,
            ..OverlayConfig::default()
        },
        seed,
    )
}

fn config(attack: AttackMode) -> RunConfig {
    RunConfig {
        ts: SimTime::ZERO,
        emerging_period: SimDuration::from_ticks(6_000),
        attack,
    }
}

/// Evaluates, from the overlay's ground truth, whether the paper's keyed
/// release predicate (full chain) holds for a given plan.
fn keyed_release_predicate(
    overlay: &Overlay,
    plan: &self_emerging_data::core::path::PathPlan,
) -> bool {
    (0..plan.cols)
        .all(|col| (0..plan.rows).any(|row| overlay.initial(plan.slot(row, col)).malicious))
}

/// Whether the joint drop predicate (a fully malicious column) holds.
fn joint_drop_predicate(
    overlay: &Overlay,
    plan: &self_emerging_data::core::path::PathPlan,
) -> bool {
    (0..plan.cols)
        .any(|col| (0..plan.rows).all(|row| overlay.initial(plan.slot(row, col)).malicious))
}

/// Whether the disjoint drop predicate (every row cut) holds.
fn disjoint_drop_predicate(
    overlay: &Overlay,
    plan: &self_emerging_data::core::path::PathPlan,
) -> bool {
    (0..plan.rows)
        .all(|row| (0..plan.cols).any(|col| overlay.initial(plan.slot(row, col)).malicious))
}

#[test]
fn joint_drop_outcomes_match_the_predicate_exactly() {
    let params = SchemeParams::Joint { k: 2, l: 3 };
    let mut disagreements = 0;
    for seed in 0..60u64 {
        let mut overlay = world(60, 0.35, seed);
        let sender = SymmetricKey::from_bytes([seed as u8; 32]);
        let plan = construct_paths(&overlay, &params, &sender).unwrap();
        let pkgs = build_keyed_packages(&plan, &params, &KeySchedule::new(sender), SECRET).unwrap();
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &config(AttackMode::Drop),
        )
        .unwrap();
        let wire_dropped = report.released.is_none();
        let model_dropped = joint_drop_predicate(&overlay, &plan);
        if wire_dropped != model_dropped {
            disagreements += 1;
        }
    }
    assert_eq!(
        disagreements, 0,
        "wire and model must agree on every no-churn world"
    );
}

#[test]
fn disjoint_drop_outcomes_match_the_predicate_exactly() {
    let params = SchemeParams::Disjoint { k: 2, l: 4 };
    for seed in 100..150u64 {
        let mut overlay = world(80, 0.3, seed);
        let sender = SymmetricKey::from_bytes([(seed % 251) as u8; 32]);
        let plan = construct_paths(&overlay, &params, &sender).unwrap();
        let pkgs = build_keyed_packages(&plan, &params, &KeySchedule::new(sender), SECRET).unwrap();
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &config(AttackMode::Drop),
        )
        .unwrap();
        assert_eq!(
            report.released.is_none(),
            disjoint_drop_predicate(&overlay, &plan),
            "world seed {seed}"
        );
    }
}

#[test]
fn keyed_release_at_ts_happens_iff_full_chain() {
    // Without churn, the wire adversary reconstructs AT ts exactly when
    // the paper predicate (a malicious holder in every column) holds.
    let params = SchemeParams::Joint { k: 2, l: 2 };
    let mut model_count = 0;
    let mut wire_count = 0;
    for seed in 200..280u64 {
        let mut overlay = world(40, 0.5, seed);
        let sender = SymmetricKey::from_bytes([(seed % 251) as u8; 32]);
        let plan = construct_paths(&overlay, &params, &sender).unwrap();
        let pkgs = build_keyed_packages(&plan, &params, &KeySchedule::new(sender), SECRET).unwrap();
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &config(AttackMode::ReleaseAhead),
        )
        .unwrap();
        let wire_at_ts = matches!(
            &report.adversary_reconstruction,
            Some((at, s)) if *at == SimTime::ZERO && s == SECRET
        );
        let model = keyed_release_predicate(&overlay, &plan);
        assert_eq!(wire_at_ts, model, "world seed {seed}");
        model_count += model as u32;
        wire_count += wire_at_ts as u32;
    }
    // Sanity: at p = 0.5 with a 2x2 grid both outcomes occur.
    assert!(model_count > 0 && wire_count > 0);
    assert!(model_count < 80);
}

#[test]
fn share_drop_outcomes_match_the_share_predicate() {
    let params = SchemeParams::Share {
        k: 2,
        l: 3,
        n: 6,
        m: vec![3, 3],
    };
    for seed in 300..360u64 {
        let mut overlay = world(60, 0.3, seed);
        let sender = SymmetricKey::from_bytes([(seed % 251) as u8; 32]);
        let plan = construct_paths(&overlay, &params, &sender).unwrap();
        let pkgs = build_share_packages(&plan, &params, &KeySchedule::new(sender), SECRET).unwrap();
        let report = execute_share(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &config(AttackMode::Drop),
        )
        .unwrap();

        // Model: starvation (honest forwarders below threshold) or onion
        // capture (an all-malicious onion-row column). No churn here, so
        // "honest" is just the initial flag.
        let malicious = |row: usize, col: usize| overlay.initial(plan.slot(row, col)).malicious;
        let mut model_dropped = false;
        for col in 0..3 {
            if col >= 1 {
                let honest = (0..6).filter(|&r| !malicious(r, col - 1)).count();
                if honest < 3 {
                    model_dropped = true;
                }
            }
            if (0..2).all(|r| malicious(r, col)) {
                model_dropped = true;
            }
        }
        assert_eq!(
            report.released.is_none(),
            model_dropped,
            "world seed {seed}"
        );
    }
}

#[test]
fn share_strict_release_matches_quorum_chain() {
    let params = SchemeParams::Share {
        k: 2,
        l: 3,
        n: 5,
        m: vec![2, 2],
    };
    let mut hits = 0;
    for seed in 400..470u64 {
        let mut overlay = world(50, 0.45, seed);
        let sender = SymmetricKey::from_bytes([(seed % 251) as u8; 32]);
        let plan = construct_paths(&overlay, &params, &sender).unwrap();
        let pkgs = build_share_packages(&plan, &params, &KeySchedule::new(sender), SECRET).unwrap();
        let report = execute_share(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &config(AttackMode::ReleaseAhead),
        )
        .unwrap();

        let malicious = |row: usize, col: usize| overlay.initial(plan.slot(row, col)).malicious;
        // Strict chain: onion contact at column 0 plus a share quorum at
        // every boundary.
        let onion0 = (0..2).any(|r| malicious(r, 0));
        let quorums = (1..3).all(|col| (0..5).filter(|&r| malicious(r, col - 1)).count() >= 2);
        let model = onion0 && quorums;
        let wire = report
            .adversary_reconstruction
            .as_ref()
            .is_some_and(|(_, s)| s == SECRET);
        assert_eq!(wire, model, "world seed {seed}");
        hits += wire as u32;
    }
    assert!(
        hits > 0,
        "at p=0.45 some worlds must fall to the quorum chain"
    );
}
