//! Cross-validation of the closed-form analysis (equations 1–3, Lemma 1,
//! Algorithm 1) against the mechanistic Monte-Carlo engine.
//!
//! This is the reproduction's core correctness argument: the measured
//! resilience of each scheme must agree with the paper's formulas in the
//! churn-free regime, and degrade the way the paper describes under churn.

use self_emerging_data::core::analysis;
use self_emerging_data::core::config::SchemeParams;
use self_emerging_data::core::montecarlo::{run_trials, TrialSpec};

const POPULATION: usize = 10_000;
const TRIALS: usize = 4_000;

fn measure(params: SchemeParams, p: f64, alpha: Option<f64>, seed: u64) -> (f64, f64) {
    let spec = TrialSpec {
        params,
        population: POPULATION,
        p,
        alpha,
        unavailability: 0.0,
    };
    let r = run_trials(&spec, TRIALS, seed).unwrap();
    (r.release_resilience.value(), r.drop_resilience.value())
}

/// 95% tolerance band for a Bernoulli estimate plus model slack from the
/// exact-count (hypergeometric) marking.
const TOL: f64 = 0.025;

#[test]
fn central_matches_formula_across_p() {
    for (i, p) in [0.1, 0.3, 0.5].into_iter().enumerate() {
        let analytic = analysis::central(p);
        let (rr, rd) = measure(SchemeParams::Central, p, None, 100 + i as u64);
        assert!(
            (rr - analytic.release).abs() < TOL,
            "p={p}: Rr {rr} vs {}",
            analytic.release
        );
        assert!(
            (rd - analytic.drop).abs() < TOL,
            "p={p}: Rd {rd} vs {}",
            analytic.drop
        );
    }
}

#[test]
fn disjoint_matches_equations_1_and_2() {
    for (i, (k, l, p)) in [(2usize, 3usize, 0.15f64), (4, 4, 0.25), (3, 8, 0.35)]
        .into_iter()
        .enumerate()
    {
        let analytic = analysis::disjoint(p, k, l);
        let (rr, rd) = measure(SchemeParams::Disjoint { k, l }, p, None, 200 + i as u64);
        assert!(
            (rr - analytic.release).abs() < TOL,
            "k={k} l={l} p={p}: Rr {rr} vs analytic {}",
            analytic.release
        );
        assert!(
            (rd - analytic.drop).abs() < TOL,
            "k={k} l={l} p={p}: Rd {rd} vs analytic {}",
            analytic.drop
        );
    }
}

#[test]
fn joint_matches_equations_1_and_3() {
    for (i, (k, l, p)) in [(2usize, 3usize, 0.2f64), (5, 10, 0.3), (3, 6, 0.45)]
        .into_iter()
        .enumerate()
    {
        let analytic = analysis::joint(p, k, l);
        let (rr, rd) = measure(SchemeParams::Joint { k, l }, p, None, 300 + i as u64);
        assert!(
            (rr - analytic.release).abs() < TOL,
            "k={k} l={l} p={p}: Rr {rr} vs analytic {}",
            analytic.release
        );
        assert!(
            (rd - analytic.drop).abs() < TOL,
            "k={k} l={l} p={p}: Rd {rd} vs analytic {}",
            analytic.drop
        );
    }
}

#[test]
fn lemma1_holds_empirically_for_the_joint_scheme() {
    // Rr + Rd > 1 for p < 0.5 — measured, not just proved.
    for (i, p) in [0.1, 0.25, 0.4, 0.49].into_iter().enumerate() {
        let (rr, rd) = measure(SchemeParams::Joint { k: 3, l: 4 }, p, None, 400 + i as u64);
        assert!(rr + rd > 1.0, "Lemma 1 violated at p={p}: Rr={rr} Rd={rd}");
    }
}

#[test]
fn share_scheme_matches_algorithm1_shape_without_churn() {
    let p = 0.2;
    let a = analysis::algorithm1(4, 8, POPULATION, 0.0, p);
    let params = SchemeParams::Share {
        k: 4,
        l: 8,
        n: a.n,
        m: a.m.clone(),
    };
    let (rr, rd) = measure(params, p, None, 500);
    // Algorithm 1 approximates; demand qualitative agreement (both very
    // high at p = 0.2 with n = 1250 shares per column).
    assert!(rr > 0.98, "share Rr {rr}");
    assert!(rd > 0.97, "share Rd {rd}");
    assert!(
        (rr - a.resilience.release).abs() < 0.05,
        "Rr {rr} vs Algorithm 1 {}",
        a.resilience.release
    );
    assert!(
        (rd - a.resilience.drop).abs() < 0.05,
        "Rd {rd} vs Algorithm 1 {}",
        a.resilience.drop
    );
}

#[test]
fn churn_ranking_matches_figure_7() {
    // At α = 3, p = 0.2 the paper's ordering is
    // share ≫ joint > disjoint > central.
    let p = 0.2;
    let alpha = Some(3.0);
    let (rr_c, rd_c) = measure(SchemeParams::Central, p, alpha, 600);
    let r_central = rr_c.min(rd_c);

    let dis = analysis::solve_disjoint(p, 0.99, POPULATION).params;
    let (rr_d, rd_d) = measure(dis, p, alpha, 601);
    let r_disjoint = rr_d.min(rd_d);

    let joint = analysis::solve_joint(p, 0.99, POPULATION).params;
    let (rr_j, rd_j) = measure(joint, p, alpha, 602);
    let r_joint = rr_j.min(rd_j);

    let share = analysis::solve_share(p, 0.99, POPULATION, 3.0).params;
    let (rr_s, rd_s) = measure(share, p, alpha, 603);
    let r_share = rr_s.min(rd_s);

    assert!(
        r_share > r_joint && r_joint > r_disjoint && r_disjoint > r_central,
        "figure-7 ordering broken: share={r_share} joint={r_joint} \
         disjoint={r_disjoint} central={r_central}"
    );
    assert!(
        r_share > 0.95,
        "share must stay high under churn: {r_share}"
    );
    assert!(
        r_central < 0.55,
        "central must collapse at α=3, p=0.2: {r_central}"
    );
}

#[test]
fn release_resilience_decreases_with_alpha_for_keyed_schemes() {
    let params = SchemeParams::Joint { k: 4, l: 6 };
    let p = 0.15;
    let mut last = f64::INFINITY;
    for (i, alpha) in [1.0, 2.0, 3.0, 5.0].into_iter().enumerate() {
        let (rr, _) = measure(params.clone(), p, Some(alpha), 700 + i as u64);
        assert!(
            rr < last + 0.02,
            "Rr must fall with α: α={alpha} gives {rr}, previous {last}"
        );
        last = rr;
    }
}

#[test]
fn strict_release_metric_is_stronger_for_keyed_schemes() {
    let spec = TrialSpec {
        params: SchemeParams::Joint { k: 3, l: 5 },
        population: POPULATION,
        p: 0.3,
        alpha: None,
        unavailability: 0.0,
    };
    let r = run_trials(&spec, TRIALS, 800).unwrap();
    assert!(
        r.strict_release_resilience.value() < r.release_resilience.value(),
        "the suffix-chain adversary must win strictly more often: strict={} paper={}",
        r.strict_release_resilience.value(),
        r.release_resilience.value()
    );
}
