//! Golden-fingerprint regression gate for the crypto hot path.
//!
//! The batch rewrite of the share-scheme crypto (slice-wise GF(256),
//! block-wise ChaCha20, memoized key schedules) promises to change **not a
//! single output byte**: packages, protocol reports and therefore the
//! Monte-Carlo trial fingerprints must stay bit-identical. These constants
//! were recorded on the pre-refactor scalar implementation; any accidental
//! byte change in packaging or crypto — a reordered RNG draw, a different
//! HKDF label, a nonce derivation tweak — fails this suite loudly instead
//! of silently invalidating every recorded baseline.
//!
//! If a change is *supposed* to alter the wire format, re-record the
//! constants in the same commit and say so in the commit message.
//!
//! **Share format v2** (the flat segment table that replaced the nested
//! column bundles): re-pinned on all three substrates and confirmed
//! *unchanged*. The trial digest covers holder slots and the protocol
//! report — released secret/time, failure, adversary reconstruction,
//! message counts — and the flattening alters only the sealing topology
//! of the package, not one byte of delivered key material or one message
//! of executor behaviour (the `format_oracle` suite in
//! `emerge_core::protocol` proves v1 and v2 reports equal field by
//! field). A fingerprint change here after a packaging edit therefore
//! still means real protocol behaviour drifted.

use self_emerging_data::contract::substrate::{ContractConfig, ContractSubstrate};
use self_emerging_data::core::config::SchemeParams;
use self_emerging_data::core::montecarlo::{run_protocol_trials, ProtocolTrialSpec};
use self_emerging_data::core::protocol::AttackMode;
use self_emerging_data::core::substrate::{AnalyticSubstrate, Overlay, OverlayConfig};
use self_emerging_data::sim::time::SimDuration;

const SEED: u64 = 0x601D;
const TRIALS: usize = 6;

fn world_config() -> OverlayConfig {
    OverlayConfig {
        n_nodes: 150,
        malicious_fraction: 0.4,
        mean_lifetime: Some(10_000),
        horizon: 100_000,
        ..OverlayConfig::default()
    }
}

fn spec(params: SchemeParams, attack: AttackMode) -> ProtocolTrialSpec {
    ProtocolTrialSpec {
        params,
        emerging_period: SimDuration::from_ticks(3_000),
        attack,
    }
}

/// The four schemes, each under the attack mode that exercises the most
/// crypto (release-ahead does real adversarial reconstruction).
fn cells() -> Vec<(&'static str, ProtocolTrialSpec)> {
    vec![
        (
            "central",
            spec(SchemeParams::Central, AttackMode::ReleaseAhead),
        ),
        (
            "disjoint_3x4",
            spec(
                SchemeParams::Disjoint { k: 3, l: 4 },
                AttackMode::ReleaseAhead,
            ),
        ),
        (
            "joint_3x4",
            spec(SchemeParams::Joint { k: 3, l: 4 }, AttackMode::ReleaseAhead),
        ),
        (
            "share_6x4",
            spec(
                SchemeParams::Share {
                    k: 2,
                    l: 4,
                    n: 6,
                    m: vec![3, 3, 4],
                },
                AttackMode::ReleaseAhead,
            ),
        ),
    ]
}

/// `(cell, analytic fingerprint)` recorded on the pre-refactor scalar
/// crypto implementation. The other substrates must agree exactly.
const GOLDEN: [(&str, u64); 4] = [
    ("central", 0xf797fb5bccacbd79),
    ("disjoint_3x4", 0x201cca94b1bc19ef),
    ("joint_3x4", 0x351113e1538c07ec),
    ("share_6x4", 0x5ba8a8bfb3db9121),
];

#[test]
fn analytic_fingerprints_match_golden() {
    for (name, spec) in cells() {
        let r = run_protocol_trials(&spec, TRIALS, SEED, |s| {
            AnalyticSubstrate::build(world_config(), s)
        })
        .unwrap();
        let (_, expected) = GOLDEN
            .iter()
            .find(|(n, _)| *n == name)
            .expect("every cell has a golden entry");
        assert_eq!(
            r.fingerprint, *expected,
            "{name}: fingerprint {:#018x} != golden {:#018x} — a crypto or \
             packaging byte changed",
            r.fingerprint, expected
        );
    }
}

#[test]
fn overlay_fingerprints_match_golden() {
    for (name, spec) in cells() {
        let r = run_protocol_trials(&spec, TRIALS, SEED, |s| Overlay::build(world_config(), s))
            .unwrap();
        let (_, expected) = GOLDEN.iter().find(|(n, _)| *n == name).unwrap();
        assert_eq!(
            r.fingerprint, *expected,
            "{name}: overlay fingerprint diverged from golden"
        );
    }
}

#[test]
fn contract_fingerprints_match_golden() {
    for (name, spec) in cells() {
        let r = run_protocol_trials(&spec, TRIALS, SEED, |s| {
            ContractSubstrate::build(ContractConfig::over(world_config()), s)
        })
        .unwrap();
        let (_, expected) = GOLDEN.iter().find(|(n, _)| *n == name).unwrap();
        assert_eq!(
            r.fingerprint, *expected,
            "{name}: contract fingerprint diverged from golden"
        );
    }
}
