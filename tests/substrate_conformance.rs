//! A reusable, trait-level conformance suite for [`HolderSubstrate`]
//! backends, run against all three substrates (overlay, analytic,
//! contract).
//!
//! Every check goes through the **trait**, not the concrete type — in
//! particular the *default* exposure methods (`any_malicious_exposure`,
//! `first_malicious_exposure`, `exposures_during`), which concrete
//! substrates may override: the suite cross-checks each against the
//! `population` free functions on the same generation timeline, so an
//! override can never drift from the default semantics. A fourth backend
//! (e.g. the planned async/network substrate) gets its conformance test
//! by adding one `#[test]` calling [`suite::run`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use self_emerging_data::contract::substrate::{ContractConfig, ContractSubstrate};
use self_emerging_data::core::substrate::{
    AnalyticSubstrate, HolderSubstrate, Overlay, OverlayConfig,
};
use self_emerging_data::dht::id::NodeId;
use self_emerging_data::dht::population;
use self_emerging_data::sim::time::{SimDuration, SimTime};

mod suite {
    use super::*;

    /// Worlds the suite exercises: a churn-free one and a churny,
    /// adversarial one.
    fn configs() -> [OverlayConfig; 2] {
        [
            OverlayConfig {
                n_nodes: 96,
                ..OverlayConfig::default()
            },
            OverlayConfig {
                n_nodes: 96,
                malicious_fraction: 0.3,
                mean_lifetime: Some(4_000),
                horizon: 80_000,
                ..OverlayConfig::default()
            },
        ]
    }

    /// Runs the full conformance suite against the backend constructed by
    /// `build`. `label` tags assertion messages.
    pub fn run<S, F>(label: &str, build: F)
    where
        S: HolderSubstrate,
        F: Fn(OverlayConfig, u64) -> S,
    {
        for (i, cfg) in configs().into_iter().enumerate() {
            let seed = 40 + i as u64;
            clock_is_monotonic(label, build(cfg, seed));
            resolution_is_consistent(label, &build(cfg, seed), cfg.n_nodes);
            generations_are_coherent(label, &build(cfg, seed));
            default_exposure_methods_match_population_semantics(label, &build(cfg, seed));
            sampling_is_uniform_width_and_distinct(label, &build(cfg, seed), cfg.n_nodes);
            storage_round_trips(label, build(cfg, seed));
            ttl_expires(label, build(cfg, seed));
            determinism(label, &build, cfg, seed);
        }
    }

    fn clock_is_monotonic<S: HolderSubstrate>(label: &str, mut s: S) {
        assert_eq!(s.now(), SimTime::ZERO, "{label}: fresh substrate at t=0");
        s.advance_to(SimTime::from_ticks(500));
        assert_eq!(s.now(), SimTime::from_ticks(500), "{label}: clock advanced");
        // Advancing to the current instant is a no-op, not a rewind.
        s.advance_to(SimTime::from_ticks(500));
        assert_eq!(s.now(), SimTime::from_ticks(500), "{label}: idempotent");
    }

    fn resolution_is_consistent<S: HolderSubstrate>(label: &str, s: &S, n: usize) {
        assert_eq!(s.n_nodes(), n, "{label}: population size");
        for probe in 0..24 {
            let target = NodeId::from_name(format!("conformance-{probe}").as_bytes());
            let closest = s.closest_slots(&target, 8);
            assert_eq!(closest.len(), 8, "{label}: closest_slots count");
            assert_eq!(
                s.resolve_holder(&target),
                closest[0],
                "{label}: resolve_holder is closest_slots' head"
            );
            let mut sorted = closest.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "{label}: closest slots are distinct");
            assert!(
                closest.iter().all(|&slot| slot < n),
                "{label}: slots in range"
            );
        }
        // Count clamping at the population size.
        let target = NodeId::from_name(b"clamp");
        assert!(
            s.closest_slots(&target, 0).is_empty(),
            "{label}: zero count"
        );
        assert_eq!(
            s.closest_slots(&target, n + 50).len(),
            n,
            "{label}: count clamps to n"
        );
    }

    fn generations_are_coherent<S: HolderSubstrate>(label: &str, s: &S) {
        for slot in 0..s.n_nodes() {
            let gens = s.generations(slot);
            assert!(!gens.is_empty(), "{label}: slot {slot} has a timeline");
            assert_eq!(gens[0].spawn, SimTime::ZERO, "{label}: genesis at t=0");
            for w in gens.windows(2) {
                assert_eq!(
                    w[0].death, w[1].spawn,
                    "{label}: slot {slot} timeline contiguous"
                );
            }
            assert_eq!(
                gens.last().unwrap().death,
                SimTime::MAX,
                "{label}: immortal tail"
            );
            // generation_at agrees with the timeline's own tenancy.
            for t in [0u64, 1, 1_999, 2_000, 50_000] {
                let t = SimTime::from_ticks(t);
                let tenant = s.generation_at(slot, t);
                assert_eq!(
                    tenant,
                    population::tenant_at(gens, t),
                    "{label}: tenant at {t}"
                );
            }
        }
    }

    /// The satellite's core check: the trait's *default* exposure methods
    /// must agree with the canonical `population` helpers on the same
    /// timeline, whether or not the backend overrides them.
    fn default_exposure_methods_match_population_semantics<S: HolderSubstrate>(label: &str, s: &S) {
        let windows = [
            (SimTime::ZERO, SimTime::ZERO), // empty window
            (SimTime::ZERO, SimTime::from_ticks(1_000)),
            (SimTime::from_ticks(999), SimTime::from_ticks(4_001)),
            (SimTime::from_ticks(4_000), SimTime::from_ticks(40_000)),
        ];
        for slot in 0..s.n_nodes() {
            let gens = s.generations(slot);
            for (from, to) in windows {
                assert_eq!(
                    s.any_malicious_exposure(slot, from, to),
                    population::any_malicious_exposure(gens, from, to),
                    "{label}: any_malicious_exposure({slot}, {from}, {to})"
                );
                assert_eq!(
                    s.first_malicious_exposure(slot, from, to),
                    population::first_malicious_exposure(gens, from, to),
                    "{label}: first_malicious_exposure({slot}, {from}, {to})"
                );
                assert_eq!(
                    s.exposures_during(slot, from, to),
                    population::exposures_during(gens, from, to),
                    "{label}: exposures_during({slot}, {from}, {to})"
                );
                // Internal consistency across the three predicates.
                assert_eq!(
                    s.any_malicious_exposure(slot, from, to),
                    s.first_malicious_exposure(slot, from, to).is_some(),
                    "{label}: any ⇔ first.is_some()"
                );
                if s.any_malicious_exposure(slot, from, to) {
                    assert!(
                        s.exposures_during(slot, from, to) > 0,
                        "{label}: a malicious exposure is an exposure"
                    );
                    let first = s.first_malicious_exposure(slot, from, to).unwrap();
                    assert!(
                        from <= first && first < to,
                        "{label}: first exposure inside the half-open window"
                    );
                }
            }
        }
    }

    fn sampling_is_uniform_width_and_distinct<S: HolderSubstrate>(label: &str, s: &S, n: usize) {
        let mut rng = StdRng::seed_from_u64(7);
        let sample = s.sample_distinct_slots(n / 2, &mut rng);
        assert_eq!(sample.len(), n / 2, "{label}: sample size");
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n / 2, "{label}: sample distinct");
        assert!(sample.iter().all(|&slot| slot < n), "{label}: in range");
        // The whole population can be drawn.
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(
            s.sample_distinct_slots(n, &mut rng).len(),
            n,
            "{label}: full draw"
        );
    }

    fn storage_round_trips<S: HolderSubstrate>(label: &str, mut s: S) {
        let key = NodeId::from_name(b"conformance-store");
        let written = s.store(key, b"payload".to_vec(), None);
        assert!(!written.is_empty(), "{label}: store places replicas");
        assert_eq!(
            s.find_value(key),
            Some(b"payload".to_vec()),
            "{label}: lookup finds the value"
        );
        assert_eq!(
            s.find_value(NodeId::from_name(b"conformance-missing")),
            None,
            "{label}: missing keys are None"
        );
    }

    fn ttl_expires<S: HolderSubstrate>(label: &str, mut s: S) {
        let key = NodeId::from_name(b"conformance-ttl");
        s.store(key, b"v".to_vec(), Some(SimDuration::from_ticks(10)));
        assert!(s.find_value(key).is_some(), "{label}: alive inside TTL");
        s.advance_to(SimTime::from_ticks(11));
        assert_eq!(s.find_value(key), None, "{label}: expired after TTL");
    }

    /// Two builds from the same seed answer every query identically.
    fn determinism<S, F>(label: &str, build: &F, cfg: OverlayConfig, seed: u64)
    where
        S: HolderSubstrate,
        F: Fn(OverlayConfig, u64) -> S,
    {
        let a = build(cfg, seed);
        let b = build(cfg, seed);
        for probe in 0..8 {
            let target = NodeId::from_name(format!("det-{probe}").as_bytes());
            assert_eq!(
                a.resolve_holder(&target),
                b.resolve_holder(&target),
                "{label}: resolution deterministic"
            );
        }
        for slot in 0..cfg.n_nodes {
            assert_eq!(
                a.generations(slot),
                b.generations(slot),
                "{label}: timelines deterministic"
            );
        }
        let mut ra = StdRng::seed_from_u64(3);
        let mut rb = StdRng::seed_from_u64(3);
        assert_eq!(
            a.sample_distinct_slots(10, &mut ra),
            b.sample_distinct_slots(10, &mut rb),
            "{label}: sampling stream deterministic"
        );
    }
}

#[test]
fn overlay_conforms() {
    suite::run("overlay", Overlay::build);
}

#[test]
fn analytic_substrate_conforms() {
    suite::run("analytic", AnalyticSubstrate::build);
}

#[test]
fn contract_substrate_conforms() {
    suite::run("contract", |cfg, seed| {
        ContractSubstrate::build(ContractConfig::over(cfg), seed)
    });
}
