//! Offline shim for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides a compatible [`proptest!`] macro, range/[`any`]/
//! [`collection::vec`] strategies and the `prop_assert*` macros. Each
//! property runs a fixed number of deterministic random cases (seeded from
//! the test name, overridable with `PROPTEST_CASES`); there is no
//! shrinking — a failing case panics with the ordinary assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPTEST_CASES` overrides the config.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values for one property parameter.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types usable as plainly-typed property parameters (`x: u8`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, bool, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy drawing an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives the deterministic per-property RNG for case `case`.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Property-based test harness. Mirrors `proptest::proptest!` for the
/// parameter forms `name in strategy` and `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.effective_cases() {
                let mut __rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), __case);
                $crate::__proptest_bind! { __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter and recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
}

/// `assert!` under a proptest-compatible name (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..10,
            b in 0u64..=5,
            c in 1u8..,
            x in 0.25f64..0.75,
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 5);
            prop_assert!(c >= 1);
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn typed_params_bind(seed: u64, flag: bool, byte: u8) {
            // All values of these types are valid; just touch them.
            let roundtrip = (seed, flag, byte);
            prop_assert_eq!(roundtrip, (seed, flag, byte));
        }

        #[test]
        fn vec_strategy_respects_bounds(
            data in crate::collection::vec(any::<u8>(), 2..7),
            nested in crate::collection::vec(crate::collection::vec(any::<u8>(), 0..3), 1..4),
        ) {
            prop_assert!((2..7).contains(&data.len()));
            prop_assert!((1..4).contains(&nested.len()));
            for inner in &nested {
                prop_assert!(inner.len() < 3);
            }
        }

        #[test]
        fn array_any_binds(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
            prop_assert_ne!(a, b); // 2^-160 collision chance
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::case_rng("x", 3);
        let mut b = super::case_rng("x", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
