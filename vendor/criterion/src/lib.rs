//! Offline shim for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides a minimal timing harness behind criterion's interface:
//! benchmark groups, `iter`/`iter_batched`, throughput annotation and the
//! `criterion_group!`/`criterion_main!` macros. Results are printed as
//! `group/id  <mean time>/iter` lines; there is no statistical analysis,
//! plotting or HTML report. Set `CRITERION_SAMPLE_MS` (default 300) to
//! trade precision for wall-clock time.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched iteration sizes its batches. Only a hint in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
        self.iters = target;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count. Accepted for API compatibility; this shim
    /// sizes iteration counts from a wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget for each benchmark in the group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher);
        report(&self.name, &id.to_string(), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{group}/{id}: no measurement");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let time = format_time(per_iter);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mibps = bytes as f64 / per_iter / (1024.0 * 1024.0);
            println!(
                "{group}/{id}: {time}/iter ({mibps:.1} MiB/s, {} iters)",
                bencher.iters
            );
        }
        Some(Throughput::Elements(elems)) => {
            let eps = elems as f64 / per_iter;
            println!(
                "{group}/{id}: {time}/iter ({eps:.0} elem/s, {} iters)",
                bencher.iters
            );
        }
        None => println!("{group}/{id}: {time}/iter ({} iters)", bencher.iters),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        report("bench", id, &bencher, None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(1), &7u64, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    x
                },
                |v| {
                    runs += 1;
                    v * 2
                },
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= runs && runs > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
