//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides the same *interfaces* ([`Rng`], [`RngCore`], [`SeedableRng`],
//! [`rngs::StdRng`], [`seq::SliceRandom`], [`seq::index::sample`]) backed
//! by a deterministic xoshiro256++ generator. Streams are stable across
//! runs and platforms — exactly what the simulation's reproducibility
//! tests require — but they intentionally do **not** bit-match upstream
//! `rand`'s ChaCha-based `StdRng`.
//!
//! The [`CryptoRng`] marker is honoured at the type level so code written
//! against real `rand` compiles unchanged; since every consumer in this
//! repository is a *simulation*, no key produced here protects real data.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for generators deemed cryptographically secure.
///
/// In this offline shim the marker is carried by [`rngs::StdRng`] purely
/// for API compatibility; see the crate docs.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// (the same construction upstream `rand` documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as upstream rand's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw from `[0, span)` by rejection (Lemire-style
/// threshold), `span > 0`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias of
    /// [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{CryptoRng, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Replaces upstream `rand`'s ChaCha12-based `StdRng` in this offline
    /// shim. Streams are platform-independent and stable across releases
    /// of this workspace (the reproducibility tests pin them).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl CryptoRng for StdRng {}
}

pub mod seq {
    //! Sequence-related helpers: shuffling and distinct-index sampling.

    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Distinct-index sampling.

        use super::super::Rng;
        use std::collections::HashMap;

        /// A set of distinct indices sampled from `0..length`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates the indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Converts into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`,
        /// in selection order, via a sparse partial Fisher–Yates (O(amount)
        /// memory regardless of `length`).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut displaced: HashMap<usize, usize> = HashMap::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let picked = displaced.get(&j).copied().unwrap_or(j);
                let at_i = displaced.get(&i).copied().unwrap_or(i);
                displaced.insert(j, at_i);
                out.push(picked);
            }
            IndexVec(out)
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{CryptoRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(3usize..7);
            assert!((3..7).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle must move things");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = seq::index::sample(&mut rng, 10_000, 64);
        let mut v = s.into_vec();
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|&i| i < 10_000));
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 64, "indices must be distinct");
    }

    #[test]
    fn index_sample_uniform_marginal() {
        // Each index should appear with probability amount/length.
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = [0usize; 10];
        for _ in 0..20_000 {
            for i in seq::index::sample(&mut rng, 10, 3).iter() {
                hits[i] += 1;
            }
        }
        for h in hits {
            // Expected 6000 per slot.
            assert!((5_400..6_600).contains(&h), "marginal count {h}");
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn take(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let r: &mut StdRng = &mut rng;
        let x = take(r);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
